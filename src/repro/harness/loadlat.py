"""Load-vs-tail-latency sweeps and saturation-knee detection.

The ``python -m repro.harness loadlat <shape>`` verb steps offered load
(the open-loop mean inter-arrival gap) across a ladder of ``openloop``
runs for FLASH and the ideal machine, collects each run's
:class:`~repro.stats.latency.LatencyMonitor` snapshot, and reports the
load-vs-p99 curve plus the **saturation knee** — the lowest offered load
at which p99 latency reaches ``factor``× its light-load baseline
(linearly interpolated between the bracketing sweep points).  Because the
per-point runs are ordinary normalized specs they fan out across the run
farm and reuse the disk cache like any other sweep.

Knee *attribution* uses the monitor's per-class component totals (fed by
the tracer): the component — PP-queue wait, protocol-processor handler,
memory, or network — whose share of attributed cycles grew the most
between the baseline point and the knee is reported as the saturating
resource.  The paper's thesis predicts ``pp`` (occupancy) for FLASH and
``memory``/``network`` for the ideal machine.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, Sequence

from ..stats.trace import COMPONENTS
from . import envopts, runfarm
from .experiments import normalize_spec, run_spec

__all__ = ["gap_ladder", "sweep_curves", "detect_knee", "attribute_knee",
           "render_curves", "DEFAULT_POINTS", "DEFAULT_MIN_GAP",
           "DEFAULT_MAX_GAP", "DEFAULT_KNEE_FACTOR"]

DEFAULT_POINTS = 6
#: Heaviest swept load: one intended request per node per 60 cycles.
DEFAULT_MIN_GAP = 60.0
#: Lightest swept load (the latency baseline): one per 960 cycles.
DEFAULT_MAX_GAP = 960.0
#: p99 multiple of the light-load baseline that defines saturation.
DEFAULT_KNEE_FACTOR = 2.0


def gap_ladder(min_gap: float = DEFAULT_MIN_GAP,
               max_gap: float = DEFAULT_MAX_GAP,
               points: int = DEFAULT_POINTS) -> List[float]:
    """Geometric ladder of mean inter-arrival gaps, lightest load first
    (descending gap), so curve rows read low-to-high offered load."""
    if points < 2:
        return [float(max_gap)]
    ratio = (min_gap / max_gap) ** (1.0 / (points - 1))
    return [max_gap * ratio ** i for i in range(points)]


def _component_shares(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Fraction of attributed component cycles per component, over the
    requests' own transactions plus the unattributed remainder."""
    totals = {c: 0.0 for c in COMPONENTS}
    for entry in snapshot.get("classes", {}).values():
        for c, v in entry.get("components", {}).items():
            totals[c] += v
    for c, v in snapshot.get("unattributed", {}).items():
        totals[c] += v
    grand = sum(totals.values())
    if grand <= 0.0:
        return {c: 0.0 for c in COMPONENTS}
    return {c: v / grand for c, v in totals.items()}


def detect_knee(loads: Sequence[float], p99s: Sequence[float],
                factor: float = DEFAULT_KNEE_FACTOR) -> Optional[Dict[str, Any]]:
    """Find the saturation knee of a load-vs-p99 curve.

    ``loads`` must be ascending offered load with ``p99s`` aligned.  The
    knee is the lowest load at which p99 reaches ``factor`` times the
    curve's lightest-load baseline, linearly interpolated between the two
    bracketing points.  Returns None when the curve never gets there
    (the swept ladder stayed under saturation).
    """
    if len(loads) < 2 or len(loads) != len(p99s):
        return None
    baseline = p99s[0]
    if baseline <= 0.0:
        return None
    threshold = factor * baseline
    for i, p99 in enumerate(p99s):
        if p99 < threshold:
            continue
        if i == 0:
            knee_load = loads[0]
        else:
            lo_l, hi_l = loads[i - 1], loads[i]
            lo_p, hi_p = p99s[i - 1], p99s[i]
            frac = ((threshold - lo_p) / (hi_p - lo_p)
                    if hi_p > lo_p else 1.0)
            knee_load = lo_l + frac * (hi_l - lo_l)
        return {
            "load": knee_load,
            "index": i,
            "baseline_p99": baseline,
            "threshold_p99": threshold,
            "factor": factor,
        }
    return None


def attribute_knee(points: List[Dict[str, Any]],
                   knee: Optional[Dict[str, Any]]) -> Optional[str]:
    """The component whose share of attributed cycles grew the most from
    the light-load baseline to the first at-or-past-knee sweep point."""
    if knee is None or not points:
        return None
    base = points[0].get("component_shares") or {}
    at_knee = points[knee["index"]].get("component_shares") or {}
    if not base or not at_knee:
        return None
    growth = {c: at_knee.get(c, 0.0) - base.get(c, 0.0) for c in COMPONENTS}
    best = max(sorted(growth), key=lambda c: growth[c])
    return best if growth[best] > 0.0 else None


def sweep_curves(profile: str, kinds: Sequence[str], gaps: Sequence[float],
                 requests: int = 256, regime: str = "large",
                 n_procs: Optional[int] = None, seed: int = 0,
                 arrival: str = "poisson", lines: Optional[int] = None,
                 trace: bool = True, factor: float = DEFAULT_KNEE_FACTOR,
                 jobs: int = 1,
                 policy: Optional[runfarm.FarmPolicy] = None,
                 log=None) -> Dict[str, Any]:
    """Run the sweep and assemble per-kind curves with detected knees.

    One normalized ``openloop`` spec per (kind, gap); specs farm across
    ``jobs`` workers and reuse the disk cache.  ``trace`` attaches the
    tracer so tail exemplars carry component decompositions (and knee
    attribution works); the sweep still runs without it, minus both.
    """
    overrides_base: Dict[str, Any] = dict(
        profile=profile, requests=requests, seed=seed, arrival=arrival)
    if lines is not None:
        overrides_base["lines"] = lines
    specs = []
    for kind in kinds:
        for gap in gaps:
            specs.append(normalize_spec(
                "openloop", kind=kind, regime=regime, n_procs=n_procs,
                workload_overrides=dict(overrides_base, mean_gap=gap),
                loadlat=True, trace=True if trace else None))
    results: List[Optional[Any]] = []
    if jobs > 1:
        report = runfarm.run_specs_resilient(
            specs, jobs=jobs, policy=policy or runfarm.FarmPolicy())
        for failure in report.failures:
            print(f"  FAILED {failure.describe()}", file=sys.stderr)
        results = list(report.results)
    else:
        for spec in specs:
            try:
                results.append(run_spec(spec))
            except Exception as exc:  # noqa: BLE001 — a None point, not a crash
                print(f"  FAILED {spec['kind']} gap="
                      f"{spec['workload_overrides']['mean_gap']:g}: {exc}",
                      file=sys.stderr)
                results.append(None)
    curves: Dict[str, Any] = {}
    index = 0
    for kind in kinds:
        points: List[Dict[str, Any]] = []
        for gap in gaps:
            result = results[index]
            index += 1
            if result is None:
                continue
            snapshot = getattr(result, "load_latency", None) or {}
            overall = snapshot.get("overall", {})
            procs = result.n_procs
            point = {
                "mean_gap": gap,
                # Offered load per node, in requests per kilocycle — the
                # curve's x axis (ascending as the gap ladder descends).
                "offered_per_node": 1000.0 / gap,
                "offered_total": procs * 1000.0 / gap,
                "achieved_total": snapshot.get("throughput", 0.0) * 1000.0,
                "generated": snapshot.get("requests", {}).get("generated", 0),
                "completed": snapshot.get("requests", {}).get("completed", 0),
                "execution_time": result.execution_time,
                "mean": overall.get("mean", 0.0),
                "p50": overall.get("p50", 0.0),
                "p90": overall.get("p90", 0.0),
                "p99": overall.get("p99", 0.0),
                "p999": overall.get("p999", 0.0),
                "max": overall.get("max", 0.0),
                "component_shares": _component_shares(snapshot),
            }
            points.append(point)
            if log is not None:
                log(kind, point)
        knee = detect_knee([p["offered_per_node"] for p in points],
                           [p["p99"] for p in points], factor=factor)
        curves[kind] = {
            "points": points,
            "knee": knee,
            "knee_component": attribute_knee(points, knee),
        }
    return {
        "app": "openloop",
        "profile": profile,
        "arrival": arrival,
        "regime": regime,
        "requests": requests,
        "seed": seed,
        "factor": factor,
        "gaps": list(gaps),
        "curves": curves,
    }


def render_curves(sweep: Dict[str, Any]) -> str:
    """Human-readable curve tables, one per machine kind."""
    from .tables import render_table

    blocks: List[str] = []
    for kind, curve in sweep["curves"].items():
        rows = []
        knee = curve["knee"]
        for i, p in enumerate(curve["points"]):
            marker = ""
            if knee is not None and i == knee["index"]:
                marker = " <- knee"
            rows.append((
                f"{p['offered_per_node']:.2f}",
                f"{p['achieved_total']:.2f}",
                f"{p['completed']}/{p['generated']}",
                f"{p['p50']:.0f}", f"{p['p90']:.0f}",
                f"{p['p99']:.0f}{marker}", f"{p['p999']:.0f}",
            ))
        title = (f"openloop/{sweep['profile']} {kind} @ {sweep['regime']}"
                 f" ({sweep['arrival']} arrivals,"
                 f" {sweep['requests']} reqs/node)")
        blocks.append(render_table(
            title,
            ["offered/node/kcyc", "achieved/kcyc", "done", "p50", "p90",
             "p99", "p99.9"],
            rows,
        ))
        if knee is not None:
            component = curve["knee_component"] or "n/a"
            blocks.append(
                f"{kind}: saturation knee at {knee['load']:.2f}"
                f" reqs/node/kcycle (p99 >= {knee['factor']:g}x baseline"
                f" {knee['baseline_p99']:.0f} cycles); growing component:"
                f" {component}")
        else:
            blocks.append(f"{kind}: no saturation knee within the swept"
                          f" load range")
    return "\n\n".join(blocks)
