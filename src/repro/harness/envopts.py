"""Shared parsing of the harness environment knobs and CLI conventions.

Every harness subcommand used to re-parse ``REPRO_*`` variables (and the
``--fast`` convention) on its own, which let the interpretations drift —
e.g. ``--fast`` selecting different sweeps per subcommand.  This module is
the single source of truth:

==================  =======================================================
``REPRO_WATCHDOG``  stall detection (off / on / ``events=N,time=T,interval=I``)
``REPRO_TRACE``     transaction tracing (off / on / ``buf=N,nodes=...,sample=T``)
``REPRO_METRICS``   metrics registry (off / on)
``REPRO_LOADLAT``   open-loop latency monitor (off / on /
                    ``window=N,exemplars=K``)
``REPRO_CACHE``     persistent result cache (on by default; off-values below)
``REPRO_JOBS``      default run-farm worker count
``REPRO_FUSION``    macro-op fusion in the node controllers (on by default;
                    off-values force every dispatch through the stepwise
                    pipeline — timing is byte-identical either way)
``REPRO_CHECK_DIR`` model-checker reproducer artifact directory (default
                    ``.repro_check``)
``REPRO_BACKEND``   ``python`` (default) or ``compiled``: ``compiled``
                    *verifies* that the mypyc extension modules built by
                    ``scripts/build_compiled.py`` are the ones actually
                    imported, and raises ``ConfigError`` otherwise — it
                    never changes behaviour, only guards against silently
                    benchmarking the wrong backend
==================  =======================================================
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

__all__ = [
    "OFF_VALUES", "ON_VALUES", "watchdog_from_env", "trace_from_env",
    "metrics_from_env", "loadlat_from_env", "cache_enabled",
    "jobs_from_env", "smoke_overrides",
    "backend_from_env", "verify_backend", "COMPILED_MODULES", "check_dir",
]

#: Spellings that disable a feature knob (case-insensitive).
OFF_VALUES = ("0", "off", "no", "false", "disabled")
#: Spellings that enable a feature knob with defaults.
ON_VALUES = ("1", "on", "yes", "true", "default", "enabled")


def watchdog_from_env() -> Optional[object]:
    """Stall detection for harness runs, from ``REPRO_WATCHDOG``: unset/off
    disables, ``on`` uses defaults, or ``events=N,time=T,interval=I`` tunes
    the budgets (see :class:`repro.sim.watchdog.Watchdog`)."""
    raw = os.environ.get("REPRO_WATCHDOG", "").strip().lower()
    if not raw or raw in OFF_VALUES:
        return None
    if raw in ON_VALUES:
        return True
    spec: Dict[str, float] = {}
    keys = {"events": ("event_budget", int), "time": ("time_budget", float),
            "interval": ("check_interval", int)}
    for part in raw.split(","):
        key, _, value = part.partition("=")
        try:
            name, convert = keys[key.strip()]
        except KeyError:
            raise ValueError(
                f"REPRO_WATCHDOG: unknown key {key.strip()!r} "
                f"(expected {sorted(keys)})")
        spec[name] = convert(value.strip())
    return spec or True


def trace_from_env():
    """Transaction tracing for harness runs, from ``REPRO_TRACE``: unset/off
    disables, ``on`` uses defaults, or ``buf=N,nodes=...,sample=T`` tunes
    the ring buffer, span node filter and time-series sampling interval
    (see :mod:`repro.stats.trace`)."""
    from ..stats.trace import parse_trace_spec
    return parse_trace_spec(os.environ.get("REPRO_TRACE"))


def metrics_from_env() -> Optional[bool]:
    """Metrics registry for harness runs, from ``REPRO_METRICS``: unset/off
    disables (None), any on-value enables (True)."""
    raw = os.environ.get("REPRO_METRICS", "").strip().lower()
    if not raw or raw in OFF_VALUES:
        return None
    if raw in ON_VALUES:
        return True
    raise ValueError(
        f"REPRO_METRICS: expected one of {ON_VALUES + OFF_VALUES}, "
        f"got {raw!r}")


def loadlat_from_env():
    """Open-loop latency monitoring for harness runs, from ``REPRO_LOADLAT``:
    unset/off disables, ``on`` uses defaults, or ``window=N,exemplars=K``
    tunes the percentile-timeline window width (cycles) and per-window tail
    exemplar count (see :mod:`repro.stats.latency`)."""
    from ..stats.latency import parse_loadlat_spec
    return parse_loadlat_spec(os.environ.get("REPRO_LOADLAT"))


def cache_enabled() -> bool:
    """Whether the persistent result cache is enabled (``REPRO_CACHE``;
    on unless explicitly set to an off-value)."""
    return os.environ.get("REPRO_CACHE", "on").strip().lower() \
        not in OFF_VALUES


#: Modules ``scripts/build_compiled.py`` compiles with mypyc; the compiled
#: backend is only "on" when every one of these imported as an extension.
COMPILED_MODULES = (
    "repro.sim.engine",
    "repro.protocol.messages",
    "repro.caches.setassoc",
    "repro.caches.mshr",
)

_BACKEND_VERIFIED: Optional[str] = None


def backend_from_env() -> str:
    """Requested simulation backend from ``REPRO_BACKEND``: ``python``
    (the default) or ``compiled`` (the mypyc extension build)."""
    raw = os.environ.get("REPRO_BACKEND", "python").strip().lower()
    if raw in ("", "python", "py", "default"):
        return "python"
    if raw in ("compiled", "mypyc", "native"):
        return "compiled"
    raise ValueError(
        f"REPRO_BACKEND: expected 'python' or 'compiled', got {raw!r}")


def verify_backend() -> str:
    """Check that the imported modules match the requested backend.

    The compiled and pure-Python backends expose the identical API, so a
    missing extension would otherwise degrade silently to the slow path and
    poison benchmark comparisons.  With ``REPRO_BACKEND=compiled`` every
    module in :data:`COMPILED_MODULES` must have imported as an extension
    (its ``__file__`` is not a ``.py`` source); otherwise ``ConfigError``
    names the stragglers.  Verified once per process.
    """
    global _BACKEND_VERIFIED
    backend = backend_from_env()
    if backend == _BACKEND_VERIFIED:
        return backend
    if backend == "compiled":
        import importlib

        plain: List[str] = []
        for name in COMPILED_MODULES:
            module = importlib.import_module(name)
            source = getattr(module, "__file__", "") or ""
            if source.endswith(".py"):
                plain.append(name)
        if plain:
            from ..common.errors import ConfigError
            raise ConfigError(
                "REPRO_BACKEND=compiled, but these modules imported as pure "
                "Python: " + ", ".join(plain)
                + " — build the extensions with scripts/build_compiled.py "
                "(requires mypyc) or unset REPRO_BACKEND")
    _BACKEND_VERIFIED = backend
    return backend


def check_dir() -> str:
    """Directory for model-checker failure reproducers (``REPRO_CHECK_DIR``;
    default ``.repro_check``).  The ``check`` subcommand writes shrunk
    reproducer JSON artifacts here; CI uploads it on failure."""
    return os.environ.get("REPRO_CHECK_DIR", "").strip() or ".repro_check"


def jobs_from_env() -> int:
    """Default run-farm worker count from ``REPRO_JOBS`` (>= 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def smoke_overrides(app: str, fast: bool = True) -> Optional[Dict[str, int]]:
    """The one meaning of ``--fast`` across subcommands: the per-app
    seconds-scale smoke shapes (``experiments.SMOKE_SIZES``), or None for
    the app's default problem size."""
    if not fast:
        return None
    from .experiments import SMOKE_SIZES
    return dict(SMOKE_SIZES[app])
