"""Table rendering and the paper's reference values.

Every benchmark prints its table with the paper's numbers alongside the
measured ones, so EXPERIMENTS.md can record paper-vs-measured directly from
bench output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..protocol.coherence import MissClass

__all__ = [
    "render_table", "PAPER_TABLE_4_1", "PAPER_TABLE_4_2", "PAPER_TABLE_5_1",
    "PAPER_FIG_4_1_SLOWDOWN", "PAPER_TABLE_5_2", "DIST_ROWS",
]

DIST_ROWS = [
    (MissClass.LOCAL_CLEAN, "Local Clean"),
    (MissClass.LOCAL_DIRTY_REMOTE, "Local Dirty Remote"),
    (MissClass.REMOTE_CLEAN, "Remote Clean"),
    (MissClass.REMOTE_DIRTY_HOME, "Remote Dirty at Home"),
    (MissClass.REMOTE_DIRTY_REMOTE, "Remote Dirty Remote"),
]

#: Table 4.1 (1 MB caches): miss rate %, distribution %, CRMTs, occupancies %.
PAPER_TABLE_4_1 = {
    #            miss   LC    LDR   RC    RDH   RDR   fCRMT iCRMT mem   pp
    "barnes": (0.06, 2.4, 3.7, 38.7, 3.6, 52.6, 153, 114, 4.2, 5.4),
    "fft":    (0.64, 20.1, 0.0, 17.7, 62.1, 0.1, 115, 83, 8.2, 14.3),
    "lu":     (0.05, 1.0, 0.0, 67.1, 31.9, 0.0, 121, 94, 0.8, 1.7),
    "mp3d":   (6.00, 0.4, 5.9, 3.8, 5.9, 84.0, 182, 130, 7.0, 36.2),
    "ocean":  (0.91, 51.7, 0.0, 10.5, 37.8, 0.0, 80, 60, 13.0, 17.7),
    "os":     (0.09, 20.0, 2.7, 58.6, 2.6, 16.1, 109, 86, 9.9, 21.0),
    "radix":  (0.78, 2.6, 76.0, 16.6, 2.2, 2.6, 136, 98, 8.7, 22.8),
}

#: Table 4.2 (smaller caches): app -> regime -> (miss rate %, LC, LDR, RC,
#: RDH, RDR, FLASH CRMT, ideal CRMT, mem occ %, pp occ %).
PAPER_TABLE_4_2 = {
    "barnes": {"medium": (0.6, 7.0, 0.1, 91.1, 0.1, 1.7, 107, 88, 9.4, 23.0)},
    "fft": {
        "small": (8.7, 64.7, 0.0, 35.3, 0.0, 0.0, 57, 48, 32.6, 36.5),
        "medium": (1.1, 42.7, 0.0, 45.1, 12.2, 0.0, 79, 64, 10.6, 15.2),
    },
    "mp3d": {
        "small": (7.5, 3.8, 2.8, 50.2, 2.8, 40.4, 142, 108, 8.8, 32.0),
        "medium": (7.1, 1.4, 4.7, 20.6, 4.7, 68.6, 168, 122, 7.6, 35.6),
    },
    "ocean": {
        "small": (11.4, 95.6, 0.0, 4.0, 0.4, 0.0, 31, 27, 28.0, 29.8),
        "medium": (2.5, 88.6, 0.0, 7.3, 4.1, 0.0, 38, 32, 20.7, 22.1),
    },
    "radix": {
        "small": (10.0, 91.3, 0.0, 8.2, 0.1, 0.4, 35, 30, 33.5, 35.1),
        "medium": (4.2, 80.1, 5.9, 11.9, 0.8, 1.3, 47, 39, 29.0, 30.6),
    },
}

#: Figure 4.1: normalized execution times (FLASH = 100); the ideal machine's
#: bar height, i.e. FLASH is 100/ideal - 1 slower.
PAPER_FIG_4_1_SLOWDOWN = {
    "barnes": 0.04, "fft": 0.10, "lu": 0.02, "mp3d": 0.25,
    "ocean": 0.08, "os": 0.10, "radix": 0.07,
}

#: Table 5.1: app -> (useless %, slowdown-without-speculation %) at 1 MB, and
#: at the small regime (None = N/A).
PAPER_TABLE_5_1 = {
    "barnes": ((54.0, 12.7), None),
    "fft": ((43.5, 0.9), (5.9, 6.8)),
    "lu": ((33.5, 0.2), None),
    "mp3d": ((67.8, 11.8), (37.7, 11.4)),
    "ocean": ((20.0, 2.2), (1.2, 21.0)),
    "os": ((21.9, 2.9), None),
    "radix": ((59.9, 4.8), (18.0, 17.9)),
}

#: Table 5.2 (1 MB column).
PAPER_TABLE_5_2 = {
    "static_kb": 14.8,
    "dual_issue_efficiency": 1.53,
    "special_fraction": 0.38,
    "pairs_per_invocation": 13.5,
    "handlers_per_miss": 3.69,
}


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], widths: Optional[List[int]] = None
                 ) -> str:
    """Plain-text table, suitable for bench output capture."""
    columns = len(headers)
    if widths is None:
        widths = [
            max(len(str(headers[c])),
                max((len(_fmt(row[c])) for row in rows), default=0))
            for c in range(columns)
        ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
