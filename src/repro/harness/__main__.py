"""Command-line experiment runner.

Usage::

    python -m repro.harness list
    python -m repro.harness latencies            # Table 3.3
    python -m repro.harness run fft              # one app, FLASH vs ideal
    python -m repro.harness run mp3d --regime small --procs 16
    python -m repro.harness suite                # Figure 4.1 sweep
    python -m repro.harness --jobs 4 suite       # ... farmed over 4 workers
    python -m repro.harness profile mp3d         # per-subsystem time attribution
    python -m repro.harness profile mp3d --json  # ... machine-readable
    python -m repro.harness trace fft --summary  # latency decomposition table
    python -m repro.harness trace fft --out fft.json   # Chrome trace_event JSON
    python -m repro.harness whatif fft --fast    # causal profile: scale handler
    python -m repro.harness whatif fft --handlers get_owner --scales 0.5,2  # costs
    python -m repro.harness faults fft           # slowdown vs injected-fault rate
    python -m repro.harness check --seed 0 --ops 2000   # coherence model checker
    python -m repro.harness check --replay .repro_check/check-repro-....json
    python -m repro.harness loadlat fft --fast   # load vs tail-latency curve
    python -m repro.harness loadlat mp3d --points 8 --json --out curve.json
    python -m repro.harness summary fft --json   # RunResult.summary() scalars
    python -m repro.harness compare fft --vs ideal --fast   # metric delta table
    python -m repro.harness diff fft/flash fft/ideal --fast # same, explicit sides
    python -m repro.harness diff old.json new.json --threshold 0.1  # regression gate
    python -m repro.harness clear                # wipe the on-disk result cache

Results persist in ``.repro_cache/`` (disable with ``REPRO_CACHE=off``), so
repeated invocations reuse prior simulations; ``--jobs``/``REPRO_JOBS`` farm
independent configurations across worker processes.  The full per-table
reproduction lives in ``benchmarks/`` (pytest-benchmark); this CLI is for
interactive exploration.
"""

from __future__ import annotations

import argparse
import sys

from ..apps.openloop import PROFILES as LOADLAT_PROFILES
from ..common.params import flash_config, ideal_config
from ..faults import FaultPlan
from . import diskcache, envopts, loadlat, runfarm
from .experiments import (
    APP_ORDER, REGIMES, run_app, run_flash_ideal, slowdown,
)
from .micro import PAPER_TABLE_3_3, measure_latencies
from .tables import render_table
from ..protocol.coherence import MissClass


def _farm_policy(args) -> runfarm.FarmPolicy:
    return runfarm.FarmPolicy(timeout=args.timeout, max_retries=args.retries)


def cmd_list(_args) -> int:
    print("applications:", ", ".join(APP_ORDER))
    print("regimes:")
    for regime, sizes in REGIMES.items():
        cells = ", ".join(
            f"{app}={size // 1024}KB" if size else f"{app}=N/A"
            for app, size in sizes.items()
        )
        print(f"  {regime:7} {cells}")
    return 0


def cmd_latencies(_args) -> int:
    flash = measure_latencies(flash_config(16))
    ideal = measure_latencies(ideal_config(16))
    rows = []
    for cls in MissClass.ALL:
        paper_ideal, paper_flash, paper_occ = PAPER_TABLE_3_3[cls]
        rows.append((cls, ideal[cls].latency, paper_ideal,
                     flash[cls].latency, paper_flash,
                     flash[cls].pp_occupancy, paper_occ))
    print(render_table(
        "Table 3.3 - no-contention miss latencies (10ns cycles)",
        ["class", "ideal", "paper", "FLASH", "paper", "PP occ", "paper"],
        rows,
    ))
    return 0


def cmd_clear(_args) -> int:
    dropped = diskcache.default_cache.clear()
    print(f"cleared {dropped} cached result(s) from {diskcache.cache_root()}")
    return 0


def cmd_run(args) -> int:
    if args.jobs > 1:
        runfarm.run_specs(
            runfarm.sweep_specs(apps=[args.app], regime=args.regime,
                                n_procs=args.procs),
            jobs=args.jobs, policy=_farm_policy(args),
        )
    flash, ideal = run_flash_ideal(args.app, regime=args.regime,
                                   n_procs=args.procs)
    rows = []
    for result in (flash, ideal):
        b = result.breakdown
        rows.append((
            result.kind, f"{result.execution_time:.0f}",
            f"{result.miss_rate:.2%}", f"{result.avg_pp_occupancy:.1%}",
            f"{result.avg_memory_occupancy:.1%}",
            f"{b['busy'] / max(1e-9, sum(b.values())):.1%}",
        ))
    print(render_table(
        f"{args.app} @ {args.regime}",
        ["machine", "exec time", "miss rate", "PP occ", "mem occ", "util"],
        rows,
    ))
    print(f"\ncost of flexibility: {slowdown(flash, ideal):.1%}")
    return 0


def cmd_profile(args) -> int:
    """Profile one uncached run and attribute time per subsystem."""
    import cProfile
    import json
    import time

    from . import experiments
    from ..stats.report import attribute_profile, render_profile

    overrides = envopts.smoke_overrides(args.app, args.fast)
    spec = experiments.normalize_spec(
        args.app, kind=args.kind, regime=args.regime, n_procs=args.procs,
        workload_overrides=overrides)
    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    result = experiments._execute(spec)  # bypass memo + disk cache
    profile.disable()
    elapsed = time.perf_counter() - start
    attribution = attribute_profile(profile)
    if args.json:
        print(json.dumps({
            "app": args.app,
            "kind": args.kind,
            "regime": args.regime,
            "references": result.references,
            "elapsed_seconds": elapsed,
            "references_per_second": result.references / elapsed,
            "total_seconds": attribution["total"],
            "subsystems": attribution["subsystems"],
            "top": {
                label: [
                    {"where": where, "seconds": tt, "calls": nc}
                    for where, tt, nc in frames[:args.top]
                ]
                for label, frames in attribution["top"].items()
            },
            "cache_totals": result.cache_totals,
        }, sort_keys=True, indent=2))
    else:
        title = (f"{args.app}/{args.kind} regime={args.regime} "
                 f"({result.references} refs, {elapsed:.1f}s under cProfile)")
        print(render_profile(attribution, title, top_n=args.top,
                             cache_totals=result.cache_totals))
        print(f"\nreferences/sec (profiled; cProfile adds ~2-3x overhead): "
              f"{result.references / elapsed:,.0f}")
    if args.pstats:
        profile.dump_stats(args.pstats)
        print(f"raw pstats written to {args.pstats}")
    return 0


def cmd_trace(args) -> int:
    """One traced (uncached) run: latency decomposition and/or Chrome JSON."""
    import json

    from . import experiments
    from ..stats import timeseries
    from ..stats.critpath import render_critpath
    from ..stats.trace import (
        parse_nodes, render_decomposition, validate_trace_events,
    )

    trace_spec = {}
    if args.buf is not None:
        trace_spec["buf"] = args.buf
    if args.nodes is not None:
        trace_spec["nodes"] = parse_nodes(args.nodes)
    if args.sample is not None:
        trace_spec["sample"] = args.sample
    overrides = envopts.smoke_overrides(args.app, args.fast)
    spec = experiments.normalize_spec(
        args.app, kind=args.kind, regime=args.regime, n_procs=args.procs,
        workload_overrides=overrides, trace=trace_spec or True)
    result, tracer = experiments.run_traced(spec)
    if args.summary or not args.out:
        title = (f"{args.app}/{args.kind} regime={args.regime} "
                 f"latency decomposition "
                 f"({result.references} refs, T={result.execution_time:.0f})")
        print(render_decomposition(result.latency_decomposition, result,
                                   title=title))
        if result.critpath is not None:
            print()
            print(render_critpath(result.critpath))
        hot = timeseries.hot_windows(tracer)
        if any(hot.values()):
            print("\nhottest sampling windows:")
            for metric, windows in sorted(hot.items()):
                cells = ", ".join(
                    f"t={row['t']:.0f} node{row['node']}={row['value']:.3g}"
                    for row in windows)
                print(f"  {metric:17} {cells}")
    if args.out:
        categories = None
        if args.filter:
            categories = [part.strip()
                          for part in args.filter.replace("+", ",").split(",")
                          if part.strip()]
        payload = tracer.to_trace_events(categories=categories)
        count = validate_trace_events(payload)
        with open(args.out, "w") as fh:
            json.dump(payload, fh)
        print(f"wrote {count} trace events to {args.out}"
              f" (chrome://tracing or https://ui.perfetto.dev)")
    return 0


def cmd_suite(args) -> int:
    report = None
    if args.jobs > 1:
        # Farm the whole sweep up front; the loop below then hits the memo.
        # Resilient mode: a crashing/hanging configuration degrades to a
        # FAILED row instead of sinking the whole suite.
        report = runfarm.run_specs_resilient(
            runfarm.sweep_specs(regime=args.regime),
            jobs=args.jobs, policy=_farm_policy(args))
        for failure in report.failures:
            print(f"  FAILED {failure.describe()}", file=sys.stderr)
    rows = []
    for app in APP_ORDER:
        try:
            flash, ideal = run_flash_ideal(app, regime=args.regime)
        except Exception as exc:  # noqa: BLE001 — degrade to a FAILED row
            rows.append((app, "FAILED", "FAILED", f"{type(exc).__name__}"))
            print(f"  {app}: FAILED ({exc})", file=sys.stderr)
            continue
        rows.append((app, f"{flash.execution_time:.0f}",
                     f"{ideal.execution_time:.0f}",
                     f"{slowdown(flash, ideal):.1%}"))
        print(f"  {app}: {slowdown(flash, ideal):.1%}", file=sys.stderr)
    print(render_table(
        f"FLASH vs ideal, regime={args.regime} (paper: 2-12% optimized,"
        " ~25% MP3D)",
        ["app", "FLASH", "ideal", "slowdown"], rows,
    ))
    if report is not None and not report.ok:
        return 1
    return 0


def cmd_faults(args) -> int:
    """Robustness sweep: one app under increasing uniform fault rates.

    A raising run (stall, protocol error, watchdog trip) becomes a FAILED
    row instead of sinking the sweep, and the command exits nonzero if any
    swept rate failed; ``--json`` emits a machine-readable report shaped
    like ``benchmarks/history.py --json`` (a ``record`` plus a ``status``)
    for scripted robustness gates."""
    import json

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    overrides = envopts.smoke_overrides(args.app, args.fast)
    failures = []
    try:
        clean = run_app(args.app, regime=args.regime, n_procs=args.procs,
                        workload_overrides=overrides)
    except Exception as exc:  # noqa: BLE001 — report and bail: no baseline
        print(f"faults: clean run failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        if args.json:
            print(json.dumps({
                "record": {"app": args.app, "regime": args.regime,
                           "seed": args.seed, "rates": []},
                "failures": [{"rate": 0.0, "error_type": type(exc).__name__,
                              "error": str(exc)}],
                "status": "fail",
            }, sort_keys=True, indent=2))
        return 1
    rows = [("0 (clean)", f"{clean.execution_time:.0f}", "-", "-", "-", "-")]
    records = [{"rate": 0.0, "execution_time": clean.execution_time,
                "slowdown": 0.0}]
    for rate in rates:
        plan = FaultPlan.uniform(rate, seed=args.seed)
        try:
            result = run_app(args.app, regime=args.regime, n_procs=args.procs,
                             workload_overrides=overrides, faults=plan)
        except Exception as exc:  # noqa: BLE001 — a FAILED row, not a crash
            rows.append((f"{rate:g}", "FAILED", type(exc).__name__,
                         "-", "-", "-"))
            failures.append({"rate": rate, "error_type": type(exc).__name__,
                             "error": str(exc)})
            print(f"  rate {rate:g}: FAILED ({exc})", file=sys.stderr)
            continue
        counters = getattr(result, "fault_counters", None)
        # A run served from the cache carries no live counters (they are
        # diagnostic, not part of the serialized result).
        delays = str(counters["delays"]) if counters else "?"
        drops = str(counters["drops"]) if counters else "?"
        slows = str(counters["pp_slowdowns"]) if counters else "?"
        slow = result.execution_time / clean.execution_time - 1.0
        rows.append((
            f"{rate:g}", f"{result.execution_time:.0f}", f"{slow:+.1%}",
            delays, drops, slows,
        ))
        records.append({
            "rate": rate, "execution_time": result.execution_time,
            "slowdown": slow,
            "counters": dict(counters) if counters else None,
        })
    if args.json:
        print(json.dumps({
            "record": {"app": args.app, "regime": args.regime,
                       "seed": args.seed, "rates": records},
            "failures": failures,
            "status": "fail" if failures else "ok",
        }, sort_keys=True, indent=2))
    else:
        print(render_table(
            f"{args.app} @ {args.regime} under injected faults"
            f" (seed={args.seed})",
            ["fault rate", "exec time", "slowdown", "delays", "drops",
             "PP slow"],
            rows,
        ))
    return 1 if failures else 0


def cmd_check(args) -> int:
    """Coherence model checker: sweep seeds x shapes x protocols x fault
    plans x fusion modes under the SWMR/SC oracle and quiesce-point
    invariant walks; shrink any failure to a replayable reproducer."""
    import json

    from ..check import (
        CheckSpec, iter_specs, replay, run_check, save_reproducer, shrink,
    )

    if args.replay:
        report = replay(args.replay)
        if args.json:
            print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
        else:
            status = "PASS" if report.ok else "FAIL"
            print(f"{status} {report.spec.describe()}"
                  f" (checked_ops={report.checked_ops})")
            if not report.ok:
                print(report.error)
        # Replaying a reproducer is *expected* to fail — that's its job —
        # so the exit code reports replay fidelity, not pass/fail.
        return 0

    seeds = ([int(s) for s in args.seeds.split(",") if s.strip()]
             if args.seeds else [args.seed])
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    fusion_modes = {"both": (True, False), "fused": (True,),
                    "stepwise": (False,)}[args.fusion]
    fault_rates = [float(r) for r in args.faults.split(",") if r.strip()]
    out_dir = args.out_dir or envopts.check_dir()
    reports = []
    failed = []
    for spec in iter_specs(seeds, ops=args.ops, nodes=args.nodes,
                           lines=args.lines, protocols=protocols,
                           kinds=kinds, fusion_modes=fusion_modes,
                           fault_rates=fault_rates, mutation=args.mutate):
        report = run_check(spec)
        if not report.ok and args.shrink:
            best, attempts = shrink(report)
            artifact = save_reproducer(best, spec, attempts, out_dir)
            report.shrunk = {
                "spec": best.spec.to_dict(),
                "attempts": attempts,
                "artifact": artifact,
            }
        reports.append(report)
        if report.ok:
            print(f"  PASS {spec.describe()}"
                  f" (checked_ops={report.checked_ops},"
                  f" quiesce={report.quiesce_checks})", file=sys.stderr)
        else:
            failed.append(report)
            print(f"  FAIL {spec.describe()}: {report.error_type}",
                  file=sys.stderr)
            if report.shrunk:
                print(f"       reproducer: {report.shrunk['artifact']}"
                      f" (ops {spec.ops} -> {report.shrunk['spec']['ops']})",
                      file=sys.stderr)
    summary = {
        "status": "fail" if failed else "ok",
        "total": len(reports),
        "passed": len(reports) - len(failed),
        "failed": len(failed),
        "checked_ops": sum(r.checked_ops for r in reports),
        "quiesce_checks": sum(r.quiesce_checks for r in reports),
        "reports": [r.to_dict() for r in reports],
    }
    if args.json:
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        print(f"check: {summary['passed']}/{summary['total']} passed,"
              f" {summary['checked_ops']} references checked,"
              f" {summary['quiesce_checks']} quiesce walks")
        for report in failed:
            print(f"\nFAIL {report.spec.describe()}")
            print(report.error)
    return 1 if failed else 0


def cmd_loadlat(args) -> int:
    """Open-loop load-vs-tail-latency sweep with saturation-knee detection.

    Steps offered load across a gap ladder for FLASH and the ideal machine
    (farmed, disk-cached), prints per-kind p50/p90/p99/p99.9 curve tables
    with the detected knee and its growing component, and optionally emits
    the whole sweep as JSON (``--json`` / ``--out FILE``)."""
    import json

    if args.gaps:
        gaps = [float(g) for g in args.gaps.split(",") if g.strip()]
    else:
        gaps = loadlat.gap_ladder(args.min_gap, args.max_gap, args.points)
    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    requests = args.requests if args.requests is not None \
        else (64 if args.fast else 256)

    def live(kind, point):
        print(f"  {kind} gap={point['mean_gap']:.0f}:"
              f" p99={point['p99']:.0f}"
              f" ({point['completed']}/{point['generated']} done)",
              file=sys.stderr)

    sweep = loadlat.sweep_curves(
        args.shape, kinds, gaps, requests=requests, regime=args.regime,
        n_procs=args.procs, seed=args.seed, arrival=args.arrival,
        trace=not args.no_trace, factor=args.factor, jobs=args.jobs,
        policy=_farm_policy(args), log=live)
    payload = json.dumps(sweep, sort_keys=True, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote curve JSON to {args.out}", file=sys.stderr)
    if args.json:
        print(payload)
    else:
        print(loadlat.render_curves(sweep))
    complete = all(len(curve["points"]) == len(gaps)
                   for curve in sweep["curves"].values())
    return 0 if complete else 1


def cmd_whatif(args) -> int:
    """Coz-style causal profile: scale individual handler costs across a
    farmed ladder and compare the measured execution-time delta against the
    critical-path prediction (see ``repro.harness.whatif``)."""
    import json

    from . import whatif

    handlers = None
    if args.handlers:
        handlers = [h.strip() for h in args.handlers.split(",") if h.strip()]
    scales = [float(s) for s in args.scales.split(",") if s.strip()]
    overrides = envopts.smoke_overrides(args.app, args.fast)
    try:
        report = whatif.run_whatif(
            args.app, kind=args.kind, regime=args.regime, n_procs=args.procs,
            workload_overrides=overrides, handlers=handlers, scales=scales,
            top=args.top, tolerance=args.tolerance, jobs=args.jobs,
            policy=_farm_policy(args))
    except ValueError as exc:
        print(f"whatif: {exc}", file=sys.stderr)
        return 2
    payload = json.dumps(report, sort_keys=True, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote causal profile JSON to {args.out}", file=sys.stderr)
    if args.json:
        print(payload)
    else:
        print(whatif.render_whatif(report))
    return 0


def cmd_summary(args) -> int:
    """One-screen (or JSON) ``RunResult.summary()`` for a single run."""
    import json

    overrides = envopts.smoke_overrides(args.app, args.fast)
    result = run_app(args.app, kind=args.kind, regime=args.regime,
                     n_procs=args.procs, workload_overrides=overrides)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        for key, value in summary.items():
            text = f"{value:.6g}" if isinstance(value, float) else str(value)
            print(f"{key:22} {text}")
    return 0


def _load_result(token: str, args):
    """One side of a diff: a RunResult JSON file, a disk-cache entry file,
    or an ``app[/kind][@regime]`` token run live (with metrics on)."""
    import json
    import os

    from ..stats.report import RunResult

    if os.path.exists(token):
        with open(token) as fh:
            payload = json.load(fh)
        if isinstance(payload, dict) and "schema" not in payload \
                and isinstance(payload.get("result"), dict):
            payload = payload["result"]   # a ``.repro_cache`` entry
        return RunResult.from_dict(payload)
    name, _, regime = token.partition("@")
    app, _, kind = name.partition("/")
    if app not in APP_ORDER and app != "openloop":
        raise SystemExit(
            f"diff: {token!r} is neither an existing file nor"
            f" <app>[/kind][@regime] (apps:"
            f" {', '.join(APP_ORDER + ['openloop'])})")
    return run_app(app, kind=kind or "flash", regime=regime or args.regime,
                   n_procs=args.procs,
                   workload_overrides=envopts.smoke_overrides(app, args.fast),
                   metrics=True, trace=True,
                   loadlat=True if app == "openloop" else None)


def _render_run_diff(result_a, result_b, a_name: str, b_name: str,
                     args) -> int:
    """Shared body of ``diff`` and ``compare``: delta table, PP-occupancy
    reconciliation, threshold gate (exit 1 on breach)."""
    from ..stats.metrics import (
        breaches, diff_rows, flatten_result, pp_reconciliation, render_diff,
    )

    per_node = getattr(args, "per_node", False)
    rows = diff_rows(flatten_result(result_a, per_node=per_node),
                     flatten_result(result_b, per_node=per_node))
    print(render_diff(rows, f"run diff: A={a_name}  B={b_name}",
                      changed_only=args.changed_only))
    for side, result in (("A", result_a), ("B", result_b)):
        reconciliation = pp_reconciliation(result)
        if reconciliation is not None:
            print(f"{side}: PP occupancy from per-handler busy cycles ="
                  f" {reconciliation['pp_occupancy_from_metrics']:.4%}"
                  f" (aggregate avg_pp_occupancy ="
                  f" {reconciliation['avg_pp_occupancy']:.4%})")
    bad = breaches(rows, args.threshold)
    if bad:
        print(f"\n{len(bad)} metric(s) exceed the"
              f" {args.threshold:.0%} relative-change threshold:",
              file=sys.stderr)
        for name, a, b, _delta, rel in bad:
            change = "new" if rel == float("inf") else f"{rel:+.1%}"
            print(f"  {name}: {a:g} -> {b:g} ({change})", file=sys.stderr)
        return 1
    return 0


def cmd_diff(args) -> int:
    """Per-metric delta table between two runs (live, cached, or files)."""
    result_a = _load_result(args.a, args)
    result_b = _load_result(args.b, args)
    return _render_run_diff(result_a, result_b, args.a, args.b, args)


def cmd_compare(args) -> int:
    """FLASH-vs-ideal (or vs a second FLASH config) metric diff for one app."""
    overrides = envopts.smoke_overrides(args.app, args.fast)
    monitor = True if args.app == "openloop" else None
    flash = run_app(args.app, kind="flash", regime=args.regime,
                    n_procs=args.procs, workload_overrides=overrides,
                    metrics=True, trace=True, loadlat=monitor)
    other = run_app(args.app, kind=args.vs, regime=args.regime,
                    n_procs=args.procs, workload_overrides=overrides,
                    metrics=True, trace=True, loadlat=monitor)
    return _render_run_diff(flash, other, f"{args.app}/flash",
                            f"{args.app}/{args.vs}", args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.harness")
    parser.add_argument(
        "--jobs", "-j", type=int, default=runfarm.default_jobs(),
        metavar="N",
        help="worker processes for independent runs (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget on farmed runs (worker is killed and"
             " the run retried; default: unlimited)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retries per failing farmed run before giving up (default: 1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list").set_defaults(fn=cmd_list)
    sub.add_parser("latencies").set_defaults(fn=cmd_latencies)
    sub.add_parser("clear", help="wipe the on-disk result cache"
                   ).set_defaults(fn=cmd_clear)
    run = sub.add_parser("run")
    run.add_argument("app", choices=APP_ORDER)
    run.add_argument("--regime", default="large",
                     choices=["large", "medium", "small"])
    run.add_argument("--procs", type=int, default=None)
    run.set_defaults(fn=cmd_run)
    suite = sub.add_parser("suite")
    suite.add_argument("--regime", default="large")
    suite.set_defaults(fn=cmd_suite)
    profile = sub.add_parser(
        "profile", help="cProfile one uncached run, attribute per subsystem")
    profile.add_argument("app", choices=APP_ORDER)
    profile.add_argument("--kind", default="flash", choices=["flash", "ideal"])
    profile.add_argument("--regime", default="large",
                         choices=["large", "medium", "small"])
    profile.add_argument("--procs", type=int, default=None)
    profile.add_argument("--fast", action="store_true",
                         help="seconds-scale smoke problem sizes")
    profile.add_argument("--top", type=int, default=3,
                         help="hottest frames listed per subsystem")
    profile.add_argument("--pstats", metavar="FILE", default=None,
                         help="also dump raw pstats data to FILE")
    profile.add_argument("--json", action="store_true",
                         help="machine-readable attribution on stdout")
    profile.set_defaults(fn=cmd_profile)
    trace = sub.add_parser(
        "trace", help="trace one run: latency decomposition, occupancy"
                      " timelines, Chrome trace_event JSON export")
    trace.add_argument("app", choices=APP_ORDER)
    trace.add_argument("--kind", default="flash", choices=["flash", "ideal"])
    trace.add_argument("--regime", default="large",
                       choices=["large", "medium", "small"])
    trace.add_argument("--procs", type=int, default=None)
    trace.add_argument("--fast", action="store_true",
                       help="seconds-scale smoke problem sizes")
    trace.add_argument("--summary", action="store_true",
                       help="print the latency-decomposition table (default"
                            " unless --out is given)")
    trace.add_argument("--out", metavar="FILE", default=None,
                       help="write Chrome trace_event JSON to FILE")
    trace.add_argument("--filter", metavar="CAT,...", default=None,
                       help="span categories to export (cpu,inbox,pp,memory,"
                            "net,pi); default: all")
    trace.add_argument("--nodes", metavar="SPEC", default=None,
                       help="record spans for these nodes only, e.g. 0+3"
                            " or 0-3 (component totals stay machine-wide)")
    trace.add_argument("--buf", type=int, default=None, metavar="N",
                       help="span ring-buffer capacity (default: 200000)")
    trace.add_argument("--sample", type=float, default=None, metavar="CYCLES",
                       help="occupancy/queue-depth sampling interval"
                            " (default: 2048 cycles)")
    trace.set_defaults(fn=cmd_trace)
    faults = sub.add_parser(
        "faults", help="sweep one app under increasing injected-fault rates")
    faults.add_argument("app", choices=APP_ORDER)
    faults.add_argument("--rates", default="0.01,0.05,0.1", metavar="R,R,...",
                        help="comma-separated uniform fault rates"
                             " (default: 0.01,0.05,0.1)")
    faults.add_argument("--seed", type=int, default=0,
                        help="fault-plan seed (default: 0)")
    faults.add_argument("--regime", default="large",
                        choices=["large", "medium", "small"])
    faults.add_argument("--procs", type=int, default=None)
    faults.add_argument("--fast", action="store_true",
                        help="seconds-scale smoke problem sizes")
    faults.add_argument("--json", action="store_true",
                        help="machine-readable sweep report on stdout"
                             " (record + status, like history.py --json)")
    faults.set_defaults(fn=cmd_faults)
    check = sub.add_parser(
        "check", help="coherence model checker: random traffic under"
                      " SWMR/SC oracles and quiesce-point invariants,"
                      " with failure shrinking")
    check.add_argument("--seed", type=int, default=0,
                       help="single workload/fault seed (default: 0)")
    check.add_argument("--seeds", metavar="S,S,...", default=None,
                       help="comma-separated seed sweep (overrides --seed)")
    check.add_argument("--ops", type=int, default=400,
                       help="operations per processor (default: 400)")
    check.add_argument("--nodes", type=int, default=4,
                       help="processors per checked machine (default: 4)")
    check.add_argument("--lines", type=int, default=8,
                       help="contended cache lines (default: 8)")
    check.add_argument("--protocols", metavar="P,P,...",
                       default="base,migratory,transfer",
                       help="protocol axis: base, migratory, transfer"
                            " (default: all three)")
    check.add_argument("--kinds", metavar="K,K,...", default="flash,ideal",
                       help="machine kinds (default: flash,ideal)")
    check.add_argument("--fusion", default="both",
                       choices=["both", "fused", "stepwise"],
                       help="macro-op fusion axis (default: both)")
    check.add_argument("--faults", metavar="R,R,...", default="0",
                       help="uniform fault rates; nonzero rates run on"
                            " flash/table only (default: 0)")
    check.add_argument("--mutate", metavar="NAME", default=None,
                       help="run with a deliberate protocol mutation"
                            " (drop_sharer, stale_reply, skip_inval, no_ack)"
                            " — the checker self-test")
    check.add_argument("--shrink", action="store_true", default=True,
                       help="shrink failures to minimal reproducers"
                            " (default)")
    check.add_argument("--no-shrink", action="store_false", dest="shrink",
                       help="skip shrinking (fast triage)")
    check.add_argument("--out-dir", metavar="DIR", default=None,
                       help="reproducer artifact directory (default:"
                            " $REPRO_CHECK_DIR or .repro_check)")
    check.add_argument("--replay", metavar="FILE", default=None,
                       help="re-run a saved reproducer instead of sweeping")
    check.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
    check.set_defaults(fn=cmd_check)
    ll = sub.add_parser(
        "loadlat", help="open-loop load vs tail-latency sweep (FLASH vs"
                        " ideal) with saturation-knee detection")
    ll.add_argument("shape", choices=sorted(LOADLAT_PROFILES),
                    help="traffic shape: an openloop profile (fft ="
                         " read-heavy scans, mp3d = write-heavy contended,"
                         " uniform = between)")
    ll.add_argument("--kinds", default="flash,ideal", metavar="K,K",
                    help="machine kinds to sweep (default: flash,ideal)")
    ll.add_argument("--points", type=int, default=loadlat.DEFAULT_POINTS,
                    help=f"sweep points on the geometric gap ladder"
                         f" (default: {loadlat.DEFAULT_POINTS})")
    ll.add_argument("--min-gap", type=float, dest="min_gap",
                    default=loadlat.DEFAULT_MIN_GAP, metavar="CYCLES",
                    help="heaviest-load mean inter-arrival gap"
                         f" (default: {loadlat.DEFAULT_MIN_GAP:g})")
    ll.add_argument("--max-gap", type=float, dest="max_gap",
                    default=loadlat.DEFAULT_MAX_GAP, metavar="CYCLES",
                    help="lightest-load mean inter-arrival gap — the"
                         " latency baseline"
                         f" (default: {loadlat.DEFAULT_MAX_GAP:g})")
    ll.add_argument("--gaps", metavar="G,G,...", default=None,
                    help="explicit gap list (overrides the ladder)")
    ll.add_argument("--requests", type=int, default=None,
                    help="requests per node per run (default: 256;"
                         " 64 with --fast)")
    ll.add_argument("--regime", default="large",
                    choices=["large", "medium", "small"])
    ll.add_argument("--procs", type=int, default=None)
    ll.add_argument("--seed", type=int, default=0)
    ll.add_argument("--arrival", default="poisson",
                    choices=["poisson", "bursty"])
    ll.add_argument("--factor", type=float,
                    default=loadlat.DEFAULT_KNEE_FACTOR, metavar="F",
                    help="p99 multiple of the light-load baseline that"
                         " defines the saturation knee"
                         f" (default: {loadlat.DEFAULT_KNEE_FACTOR:g})")
    ll.add_argument("--fast", action="store_true",
                    help="seconds-scale sweep (fewer requests per node)")
    ll.add_argument("--no-trace", action="store_true", dest="no_trace",
                    help="skip the tracer (no tail-exemplar decomposition"
                         " or knee attribution)")
    ll.add_argument("--json", action="store_true",
                    help="machine-readable sweep on stdout")
    ll.add_argument("--out", metavar="FILE", default=None,
                    help="also write the sweep JSON to FILE")
    ll.set_defaults(fn=cmd_loadlat)
    whatif = sub.add_parser(
        "whatif", help="Coz-style causal profile: scale handler costs on a"
                       " farmed ladder, measured vs critical-path-predicted"
                       " speedup")
    whatif.add_argument("app", choices=APP_ORDER + ["openloop"])
    whatif.add_argument("--kind", default="flash", choices=["flash"],
                        help="machine kind (flash only: the ideal machine's"
                             " handlers are zero-width)")
    whatif.add_argument("--regime", default="large",
                        choices=["large", "medium", "small"])
    whatif.add_argument("--procs", type=int, default=None)
    whatif.add_argument("--fast", action="store_true",
                        help="seconds-scale smoke problem sizes")
    whatif.add_argument("--handlers", metavar="H,H,...", default=None,
                        help="handlers to scale (default: the top critical-"
                             "path levers)")
    whatif.add_argument("--scales", metavar="S,S,...", default="0.5,2.0",
                        help="cost factors per handler (default: 0.5,2.0)")
    whatif.add_argument("--top", type=int, default=3,
                        help="levers profiled when --handlers is omitted"
                             " (default: 3)")
    whatif.add_argument("--tolerance", type=float, default=None, metavar="R",
                        help="relative measured-vs-predicted divergence that"
                             " flags a handler (default: 0.5)")
    whatif.add_argument("--json", action="store_true",
                        help="machine-readable causal profile on stdout")
    whatif.add_argument("--out", metavar="FILE", default=None,
                        help="also write the profile JSON to FILE")
    whatif.set_defaults(fn=cmd_whatif)
    summary = sub.add_parser(
        "summary", help="RunResult.summary() scalars for one run")
    summary.add_argument("app", choices=APP_ORDER)
    summary.add_argument("--kind", default="flash", choices=["flash", "ideal"])
    summary.add_argument("--regime", default="large",
                         choices=["large", "medium", "small"])
    summary.add_argument("--procs", type=int, default=None)
    summary.add_argument("--fast", action="store_true",
                         help="seconds-scale smoke problem sizes")
    summary.add_argument("--json", action="store_true",
                         help="machine-readable summary on stdout")
    summary.set_defaults(fn=cmd_summary)

    def _diff_common(p) -> None:
        p.add_argument("--regime", default="large",
                       choices=["large", "medium", "small"])
        p.add_argument("--procs", type=int, default=None)
        p.add_argument("--fast", action="store_true",
                       help="seconds-scale smoke problem sizes for live runs")
        p.add_argument("--per-node", action="store_true", dest="per_node",
                       help="keep per-node family labels instead of summing"
                            " them machine-wide")
        p.add_argument("--changed-only", action="store_true",
                       dest="changed_only",
                       help="hide metrics whose delta is zero")
        p.add_argument("--threshold", type=float, default=None, metavar="R",
                       help="exit nonzero when any |relative change| exceeds"
                            " R (e.g. 0.1 = 10%%)")

    diff = sub.add_parser(
        "diff", help="per-metric delta table between two runs; each side is"
                     " a RunResult/cache-entry JSON file or <app>[/kind]"
                     "[@regime] run live with metrics on")
    diff.add_argument("a", metavar="A")
    diff.add_argument("b", metavar="B")
    _diff_common(diff)
    diff.set_defaults(fn=cmd_diff)
    compare = sub.add_parser(
        "compare", help="FLASH-vs-ideal metric diff for one app"
                        " (the Table 4.2 view)")
    compare.add_argument("app", choices=APP_ORDER + ["openloop"])
    compare.add_argument("--vs", default="ideal", choices=["ideal", "flash"],
                         help="machine kind on the B side (default: ideal)")
    _diff_common(compare)
    compare.set_defaults(fn=cmd_compare)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
