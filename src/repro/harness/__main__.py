"""Command-line experiment runner.

Usage::

    python -m repro.harness list
    python -m repro.harness latencies            # Table 3.3
    python -m repro.harness run fft              # one app, FLASH vs ideal
    python -m repro.harness run mp3d --regime small --procs 16
    python -m repro.harness suite                # Figure 4.1 sweep
    python -m repro.harness --jobs 4 suite       # ... farmed over 4 workers
    python -m repro.harness profile mp3d         # per-subsystem time attribution
    python -m repro.harness clear                # wipe the on-disk result cache

Results persist in ``.repro_cache/`` (disable with ``REPRO_CACHE=off``), so
repeated invocations reuse prior simulations; ``--jobs``/``REPRO_JOBS`` farm
independent configurations across worker processes.  The full per-table
reproduction lives in ``benchmarks/`` (pytest-benchmark); this CLI is for
interactive exploration.
"""

from __future__ import annotations

import argparse
import sys

from ..common.params import flash_config, ideal_config
from . import diskcache, runfarm
from .experiments import APP_ORDER, REGIMES, run_flash_ideal, slowdown
from .micro import PAPER_TABLE_3_3, measure_latencies
from .tables import render_table
from ..protocol.coherence import MissClass


def cmd_list(_args) -> int:
    print("applications:", ", ".join(APP_ORDER))
    print("regimes:")
    for regime, sizes in REGIMES.items():
        cells = ", ".join(
            f"{app}={size // 1024}KB" if size else f"{app}=N/A"
            for app, size in sizes.items()
        )
        print(f"  {regime:7} {cells}")
    return 0


def cmd_latencies(_args) -> int:
    flash = measure_latencies(flash_config(16))
    ideal = measure_latencies(ideal_config(16))
    rows = []
    for cls in MissClass.ALL:
        paper_ideal, paper_flash, paper_occ = PAPER_TABLE_3_3[cls]
        rows.append((cls, ideal[cls].latency, paper_ideal,
                     flash[cls].latency, paper_flash,
                     flash[cls].pp_occupancy, paper_occ))
    print(render_table(
        "Table 3.3 - no-contention miss latencies (10ns cycles)",
        ["class", "ideal", "paper", "FLASH", "paper", "PP occ", "paper"],
        rows,
    ))
    return 0


def cmd_clear(_args) -> int:
    dropped = diskcache.default_cache.clear()
    print(f"cleared {dropped} cached result(s) from {diskcache.cache_root()}")
    return 0


def cmd_run(args) -> int:
    if args.jobs > 1:
        runfarm.run_specs(
            runfarm.sweep_specs(apps=[args.app], regime=args.regime,
                                n_procs=args.procs),
            jobs=args.jobs,
        )
    flash, ideal = run_flash_ideal(args.app, regime=args.regime,
                                   n_procs=args.procs)
    rows = []
    for result in (flash, ideal):
        b = result.breakdown
        rows.append((
            result.kind, f"{result.execution_time:.0f}",
            f"{result.miss_rate:.2%}", f"{result.avg_pp_occupancy:.1%}",
            f"{result.avg_memory_occupancy:.1%}",
            f"{b['busy'] / max(1e-9, sum(b.values())):.1%}",
        ))
    print(render_table(
        f"{args.app} @ {args.regime}",
        ["machine", "exec time", "miss rate", "PP occ", "mem occ", "util"],
        rows,
    ))
    print(f"\ncost of flexibility: {slowdown(flash, ideal):.1%}")
    return 0


def cmd_profile(args) -> int:
    """Profile one uncached run and attribute time per subsystem."""
    import cProfile
    import time

    from . import experiments
    from ..stats.report import attribute_profile, render_profile

    spec = experiments.normalize_spec(
        args.app, kind=args.kind, regime=args.regime, n_procs=args.procs)
    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    result = experiments._execute(spec)  # bypass memo + disk cache
    profile.disable()
    elapsed = time.perf_counter() - start
    attribution = attribute_profile(profile)
    title = (f"{args.app}/{args.kind} regime={args.regime} "
             f"({result.references} refs, {elapsed:.1f}s under cProfile)")
    print(render_profile(attribution, title, top_n=args.top,
                         cache_totals=result.cache_totals))
    print(f"\nreferences/sec (profiled; cProfile adds ~2-3x overhead): "
          f"{result.references / elapsed:,.0f}")
    if args.pstats:
        profile.dump_stats(args.pstats)
        print(f"raw pstats written to {args.pstats}")
    return 0


def cmd_suite(args) -> int:
    if args.jobs > 1:
        # Farm the whole sweep up front; the loop below then hits the memo.
        runfarm.run_specs(runfarm.sweep_specs(regime=args.regime),
                          jobs=args.jobs)
    rows = []
    for app in APP_ORDER:
        flash, ideal = run_flash_ideal(app, regime=args.regime)
        rows.append((app, f"{flash.execution_time:.0f}",
                     f"{ideal.execution_time:.0f}",
                     f"{slowdown(flash, ideal):.1%}"))
        print(f"  {app}: {slowdown(flash, ideal):.1%}", file=sys.stderr)
    print(render_table(
        f"FLASH vs ideal, regime={args.regime} (paper: 2-12% optimized,"
        " ~25% MP3D)",
        ["app", "FLASH", "ideal", "slowdown"], rows,
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.harness")
    parser.add_argument(
        "--jobs", "-j", type=int, default=runfarm.default_jobs(),
        metavar="N",
        help="worker processes for independent runs (default: $REPRO_JOBS or 1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list").set_defaults(fn=cmd_list)
    sub.add_parser("latencies").set_defaults(fn=cmd_latencies)
    sub.add_parser("clear", help="wipe the on-disk result cache"
                   ).set_defaults(fn=cmd_clear)
    run = sub.add_parser("run")
    run.add_argument("app", choices=APP_ORDER)
    run.add_argument("--regime", default="large",
                     choices=["large", "medium", "small"])
    run.add_argument("--procs", type=int, default=None)
    run.set_defaults(fn=cmd_run)
    suite = sub.add_parser("suite")
    suite.add_argument("--regime", default="large")
    suite.set_defaults(fn=cmd_suite)
    profile = sub.add_parser(
        "profile", help="cProfile one uncached run, attribute per subsystem")
    profile.add_argument("app", choices=APP_ORDER)
    profile.add_argument("--kind", default="flash", choices=["flash", "ideal"])
    profile.add_argument("--regime", default="large",
                         choices=["large", "medium", "small"])
    profile.add_argument("--procs", type=int, default=None)
    profile.add_argument("--top", type=int, default=3,
                         help="hottest frames listed per subsystem")
    profile.add_argument("--pstats", metavar="FILE", default=None,
                         help="also dump raw pstats data to FILE")
    profile.set_defaults(fn=cmd_profile)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
