"""Coz-style causal "what-if" profiling for the flexibility cost.

Critical-path extraction (:mod:`repro.stats.critpath`) *predicts* which
handlers matter: scaling handler ``h`` by factor ``s`` should move execution
time by ``(1 - s) * critical_cycles[h]`` — the handler's cycles *on the
critical path* — not by ``(1 - s) * total_cycles[h]`` (the naive occupancy
account, which charges slack cycles that a closed system absorbs for free).

This module closes the loop the way causal profilers do: actually re-run
the workload with individual handler costs deterministically scaled (the
``handler_scale`` config knob consumed by
:class:`~repro.magic.costmodel.TableCostModel`), measure the execution-time
delta, and compare it against both predictions.  Handlers whose measured
and predicted profiles diverge beyond tolerance are flagged — they mark
either contention effects the slack model cannot see (queueing regrowth,
shifted interleavings) or criticality the greedy walk misattributed.

Every experiment is an ordinary normalized spec (``handler_scale`` rides in
``config_overrides``), so the ladder fans out across the run farm and
reuses the disk cache like any other sweep.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from . import runfarm
from .experiments import default_procs, normalize_spec, run_app

__all__ = ["run_whatif", "render_whatif", "DEFAULT_SCALES",
           "DEFAULT_TOLERANCE"]

#: Default virtual-speedup / slowdown ladder.  2.0 doubles every (integer)
#: handler cost exactly; 0.5 halves it up to the ``max(1, round(...))``
#: floor, so the speedup direction is the noisier of the two.
DEFAULT_SCALES = (0.5, 2.0)

#: Relative measured-vs-predicted divergence that flags a handler.
DEFAULT_TOLERANCE = 0.5

#: Absolute divergence floor, as a fraction of baseline execution time:
#: deltas this small are below the discreteness of integer handler costs.
_ABS_FLOOR_FRACTION = 0.005


def run_whatif(
    app: str,
    kind: str = "flash",
    regime: str = "large",
    n_procs: Optional[int] = None,
    workload_overrides: Optional[dict] = None,
    handlers: Optional[Sequence[str]] = None,
    scales: Sequence[float] = DEFAULT_SCALES,
    top: int = 3,
    tolerance: Optional[float] = None,
    jobs: Optional[int] = None,
    policy=None,
) -> Dict[str, Any]:
    """Run one causal profile: a traced baseline, then a farmed
    ``handlers x scales`` ladder of handler-cost-scaled re-runs.

    Returns a JSON-able report with one experiment record per (handler,
    scale) comparing the measured execution-time delta against the
    critical-path prediction and the naive total-occupancy prediction.
    """
    if tolerance is None:
        tolerance = DEFAULT_TOLERANCE
    if kind == "ideal":
        raise ValueError(
            "whatif needs the table cost model; the ideal machine's"
            " handlers are zero-width, so scaling them is a no-op")
    traced = run_app(app, kind=kind, regime=regime, n_procs=n_procs,
                     workload_overrides=workload_overrides, trace=True)
    critpath = traced.critpath or {}
    entries = critpath.get("handlers") or {}
    baseline = traced.execution_time   # traced core == untraced (tested)

    if handlers is None:
        ranked = sorted(
            (h for h, e in entries.items() if e["total_cycles"] > 0.0),
            key=lambda h: (-entries[h]["critical_cycles"], h))
        handlers = ranked[:top]
    else:
        handlers = list(handlers)
        unknown = [h for h in handlers if h not in entries]
        if unknown:
            known = ", ".join(sorted(entries)) or "(none)"
            raise ValueError(
                f"unknown handler(s) {', '.join(unknown)}; this run"
                f" invoked: {known}")
    if not handlers:
        raise ValueError(f"{app}/{kind}: no PP handler cycles to scale")
    scales = [float(s) for s in scales]

    ladder = [
        normalize_spec(app, kind=kind, regime=regime, n_procs=n_procs,
                       workload_overrides=workload_overrides,
                       config_overrides={"handler_scale": {handler: scale}})
        for handler in handlers for scale in scales
    ]
    if jobs is not None and jobs > 1:
        runfarm.run_specs(ladder, jobs=jobs, policy=policy)   # seeds the memo

    floor = _ABS_FLOOR_FRACTION * baseline
    experiments: List[Dict[str, Any]] = []
    measured_total: Dict[str, float] = {}
    for handler in handlers:
        entry = entries[handler]
        for scale in scales:
            result = run_app(
                app, kind=kind, regime=regime, n_procs=n_procs,
                workload_overrides=workload_overrides,
                config_overrides={"handler_scale": {handler: scale}})
            measured = baseline - result.execution_time
            predicted = (1.0 - scale) * entry["critical_cycles"]
            naive = (1.0 - scale) * entry["total_cycles"]
            divergence = abs(measured - predicted)
            divergent = divergence > max(tolerance * abs(predicted), floor)
            sign_ok = (measured * predicted > 0.0
                       or (abs(measured) <= floor and abs(predicted) <= floor))
            experiments.append({
                "handler": handler,
                "scale": scale,
                "execution_time": result.execution_time,
                "measured_delta": measured,
                "predicted_delta": predicted,
                "naive_delta": naive,
                "divergent": divergent,
                "confirmed": sign_ok and not divergent,
            })
            measured_total[handler] = (
                measured_total.get(handler, 0.0) + abs(measured))

    predicted_ranking = sorted(
        handlers, key=lambda h: (-entries[h]["critical_cycles"], h))
    measured_ranking = sorted(
        handlers, key=lambda h: (-measured_total.get(h, 0.0), h))
    return {
        "app": app,
        "kind": kind,
        "regime": regime,
        "n_procs": n_procs if n_procs is not None else default_procs(app),
        "baseline_execution_time": baseline,
        "handlers": list(handlers),
        "scales": scales,
        "tolerance": tolerance,
        "experiments": experiments,
        "predicted_ranking": predicted_ranking,
        "measured_ranking": measured_ranking,
        "ranking_confirmed": bool(
            predicted_ranking and measured_ranking
            and predicted_ranking[0] == measured_ranking[0]),
        "confirmed": sum(1 for e in experiments if e["confirmed"]),
        "divergent": sum(1 for e in experiments if e["divergent"]),
    }


def render_whatif(report: Dict[str, Any]) -> str:
    """Human-readable causal profile: the experiment table plus a ranking
    verdict footer."""
    title = (f"causal profile: {report['app']}/{report['kind']}"
             f"@{report['regime']} (baseline"
             f" {report['baseline_execution_time']:.0f} cycles)")
    lines = [title, "=" * len(title)]
    header = (f"{'handler':<22} {'scale':>5} {'measured':>10} "
              f"{'predicted':>10} {'naive':>10} {'verdict':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for exp in report["experiments"]:
        verdict = ("DIVERGENT" if exp["divergent"]
                   else "confirmed" if exp["confirmed"] else "weak")
        lines.append(
            f"{exp['handler']:<22} {exp['scale']:>5.2f} "
            f"{exp['measured_delta']:>+10.0f} {exp['predicted_delta']:>+10.0f} "
            f"{exp['naive_delta']:>+10.0f} {verdict:>10}")
    lines.append("")
    lines.append(
        f"{report['confirmed']}/{len(report['experiments'])} experiments"
        f" confirm the critical-path prediction;"
        f" {report['divergent']} divergent")
    top_pred = report["predicted_ranking"][0] if report["predicted_ranking"] \
        else None
    if top_pred is not None:
        agrees = "agrees" if report["ranking_confirmed"] else "DISAGREES"
        lines.append(
            f"top predicted lever {top_pred}: measured ranking {agrees}"
            f" (measured top: {report['measured_ranking'][0]})")
    lines.append(
        "deltas are cycles of execution time saved (+) or lost (-) vs"
        " baseline; predicted = (1-s) x critical cycles, naive = (1-s) x"
        " total occupancy")
    return "\n".join(lines)
