"""Experiment harness: per-table experiments, microbenchmarks, rendering."""

from . import experiments, micro, tables

__all__ = ["experiments", "micro", "tables"]
