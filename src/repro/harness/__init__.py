"""Experiment harness: per-table experiments, microbenchmarks, rendering,
the parallel run farm and the persistent result cache."""

from . import diskcache, experiments, micro, runfarm, tables

__all__ = ["diskcache", "experiments", "micro", "runfarm", "tables"]
