"""MP3D — high-communication unstructured accesses (Table 3.5).

The SPLASH MP3D rarefied-fluid Monte Carlo: particles (block-owned, local)
fly through a shared 3-D space-cell array each timestep, updating the cell
they land in and occasionally colliding with another particle in the same
cell.  Consecutive timesteps see each cell written by whichever processor's
particle last visited it, so cell accesses miss "remote dirty remote" — the
paper's communication stress test (6% miss rate, 84% remote dirty remote,
25% FLASH slowdown).  A few global counters shared under a lock reproduce
MP3D's mild hot-spotting.

Paper problem size: 50,000 particles.  Default: 4096 particles, 4 steps.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..common.params import MachineConfig
from .base import OpBuilder, Workload, rng_stream
from .placement import AddressSpace

PARTICLE_BYTES = 64   # two particles share a line (false sharing, as in MP3D)
CELL_BYTES = 64

__all__ = ["MP3DWorkload"]


class MP3DWorkload(Workload):
    name = "mp3d"
    paper_problem = "50,000 particles"

    def __init__(self, particles: int = 4096, cells: int = 2048,
                 steps: int = 4, collision_fraction: float = 0.2,
                 move_work: float = 60.0, seed: int = 11):
        self.n_particles = particles
        self.n_cells = cells
        self.steps = steps
        self.collision_fraction = collision_fraction
        self.move_work = move_work
        self.seed = seed

    def _trajectories(self, n_procs: int):
        """Per-step cell index for each particle, plus collision partners.

        Particles drift through the cell grid; the cell sequence is what
        creates the migratory-data sharing pattern.
        """
        rng = rng_stream(self.seed)
        cell_of = [rng() % self.n_cells for _ in range(self.n_particles)]
        steps: List[List[Tuple[int, int]]] = []
        collision_cut = int(self.collision_fraction * 2**32)
        for _step in range(self.steps):
            frame: List[Tuple[int, int]] = []
            occupants = {}
            for p in range(self.n_particles):
                # Drift to a nearby cell (unstructured but spatially local).
                delta = (rng() % 7) - 3
                cell_of[p] = (cell_of[p] + delta) % self.n_cells
                cell = cell_of[p]
                partner = -1
                if rng() < collision_cut and cell in occupants:
                    partner = occupants[cell]
                occupants[cell] = p
                frame.append((cell, partner))
            steps.append(frame)
        return steps

    def build(self, config: MachineConfig):
        space = AddressSpace(config)
        P = config.n_procs
        particles = space.alloc(self.n_particles * PARTICLE_BYTES,
                                policy="block", name="mp3d.particles")
        cells = space.alloc(self.n_cells * CELL_BYTES, policy="round_robin",
                            name="mp3d.cells")
        globals_region = space.alloc(4096, policy="node", node=0,
                                     name="mp3d.globals")
        trajectories = self._trajectories(P)
        return [
            self._stream(config, cpu, particles, cells, globals_region,
                         trajectories)
            for cpu in range(P)
        ]

    def _stream(self, config: MachineConfig, cpu: int, particles, cells,
                globals_region, trajectories) -> Iterator[Tuple]:
        P = config.n_procs
        per = self.n_particles // P
        mine = range(cpu * per, (cpu + 1) * per)
        # A particle move touches position/velocity fields (~5 words) plus
        # the cell's counters (~4 words).
        ops = OpBuilder(work_per_ref=0.6, refs_per_access=4)

        def particle_addr(p: int) -> int:
            return particles.element(p, PARTICLE_BYTES)

        def cell_addr(c: int) -> int:
            return cells.element(c, CELL_BYTES)

        # Initialization: fill own particles (local, cold).
        for p in mine:
            yield from ops.write(particle_addr(p))
        yield from ops.flush()
        yield ("b", "mp3d.init")

        for step, frame in enumerate(trajectories):
            for p in mine:
                cell, partner = frame[p]
                # Move: read-modify-write the particle (local) ...
                yield from ops.read(particle_addr(p))
                yield from ops.compute(self.move_work)
                yield from ops.write(particle_addr(p))
                # ... and the space cell it lands in (migratory, shared).
                yield from ops.read(cell_addr(cell))
                yield from ops.write(cell_addr(cell))
                if partner >= 0:
                    # Collision: touch the partner particle too.
                    yield from ops.read(particle_addr(partner))
                    yield from ops.write(particle_addr(partner))
            # Global step accounting under a lock (MP3D's hot spot).
            yield from ops.flush()
            yield ("l", "mp3d.global")
            yield from ops.read(globals_region.addr(0))
            yield from ops.write(globals_region.addr(0))
            yield from ops.flush()
            yield ("u", "mp3d.global")
            yield ("b", ("mp3d.step", step))
