"""Random-traffic workload for the coherence model checker.

Unlike the paper applications — whose reference streams follow real
algorithmic structure — ``randmem`` exists to *stress the protocol*: a
small, heavily contended set of cache lines is hammered concurrently by
every processor with a seeded mix of loads, stores, and lock-protected
read-modify-writes.  Line popularity is Zipf-skewed so a few lines see
most of the traffic (maximising write races, invalidation storms, and
three-hop forwarding), while the tail keeps replacements and writebacks
in play.  Index-based barriers partition the run into episodes so the
checker can cross-validate directory / cache / MSHR state at quiesce
points mid-run, and an optional block-transfer lane exercises the
message-passing path against the same cached lines' protocol machinery.

Everything is deterministic in (seed, ops, lines, n_procs): the same
spec replays the same interleaving-relevant stream, which is what makes
shrunk failure reproducers replayable.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..common.params import MachineConfig
from ..common.units import CACHE_LINE_BYTES, PAGE_BYTES, WORDS_PER_LINE
from .base import Workload, rng_stream

__all__ = ["RandMemWorkload"]

#: byte stride between consecutive checked lines within the shared region.
#: One page plus one line: consecutive lines land on consecutive pages (so
#: round-robin placement spreads homes across nodes) *and* on different
#: cache sets (so the small 2-way cache still sees conflict evictions).
_LINE_STRIDE = PAGE_BYTES + CACHE_LINE_BYTES

#: per-cpu seed spacing (golden-ratio increment keeps streams uncorrelated)
_CPU_SALT = 0x9E3779B9


class RandMemWorkload(Workload):
    """Seeded random traffic over a small contended line set."""

    name = "randmem"
    paper_problem = "n/a (checker workload, not a paper application)"

    def __init__(self, seed: int = 0, ops: int = 400, lines: int = 8,
                 write_frac: float = 0.35, zipf_theta: float = 0.8,
                 barrier_every: int = 64, lock_frac: float = 0.05,
                 transfers: bool = False, transfer_every: int = 97):
        if lines < 1:
            raise ValueError("randmem needs at least one line")
        if ops < 1:
            raise ValueError("randmem needs at least one op per cpu")
        self.seed = seed
        self.ops = ops
        self.lines = lines
        self.write_frac = write_frac
        self.zipf_theta = zipf_theta
        self.barrier_every = max(1, barrier_every)
        self.lock_frac = lock_frac
        self.transfers = transfers
        self.transfer_every = max(2, transfer_every)

    # -- shared-state construction ---------------------------------------------

    def _line_addrs(self, space) -> List[int]:
        """Allocate the contended region and return its line addresses."""
        nbytes = self.lines * _LINE_STRIDE + CACHE_LINE_BYTES
        region = space.alloc(nbytes, policy="round_robin", name="randmem.hot")
        return [region.addr(i * _LINE_STRIDE) for i in range(self.lines)]

    def _zipf_cdf(self, rng) -> Tuple[List[int], List[int]]:
        """Integer CDF (scaled to 2**32) over a shuffled line order.

        The shuffle decorrelates popularity rank from home-node placement;
        otherwise line 0 (home node 0) would always be the hottest and the
        checker would under-explore contention at other homes.
        """
        order = list(range(self.lines))
        for i in range(self.lines - 1, 0, -1):
            j = rng() % (i + 1)
            order[i], order[j] = order[j], order[i]
        weights = [(i + 1) ** -self.zipf_theta for i in range(self.lines)]
        total = sum(weights)
        cdf: List[int] = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(min(0xFFFFFFFF, int(acc / total * 4294967296.0)))
        cdf[-1] = 0xFFFFFFFF
        return order, cdf

    def build(self, config: MachineConfig) -> List[Iterator[Tuple]]:
        from .placement import AddressSpace

        space = AddressSpace(config)
        line_addrs = self._line_addrs(space)
        order, cdf = self._zipf_cdf(rng_stream(self.seed))
        xfer = None
        if self.transfers:
            # A disjoint striped region: transfers must not alias the
            # checked lines (the transfer engine moves raw bytes and would
            # invalidate the oracle's single-writer bookkeeping).
            xfer = space.alloc_striped(4 * CACHE_LINE_BYTES, name="randmem.xfer")
        return [
            self._stream(config, cpu, line_addrs, order, cdf, xfer)
            for cpu in range(config.n_procs)
        ]

    def streams(self, config, space, cpu):  # pragma: no cover - via build()
        raise NotImplementedError("randmem builds all streams at once")

    # -- per-cpu stream --------------------------------------------------------

    def _stream(self, config: MachineConfig, cpu: int,
                line_addrs: List[int], order: List[int], cdf: List[int],
                xfer) -> Iterator[Tuple]:
        rng = rng_stream(self.seed ^ ((cpu + 1) * _CPU_SALT))
        n = config.n_procs
        write_cut = int(self.write_frac * 4294967296.0)
        lock_cut = int(self.lock_frac * 4294967296.0)

        def pick_line() -> int:
            u = rng()
            for rank, cut in enumerate(cdf):
                if u <= cut:
                    return order[rank]
            return order[-1]

        def word_addr(line_idx: int) -> int:
            return line_addrs[line_idx] + (rng() % WORDS_PER_LINE) * 8

        for i in range(self.ops):
            if i > 0 and i % self.barrier_every == 0:
                yield ("b", ("randmem", i))
            if (
                self.transfers
                and n > 1
                and i % self.transfer_every == self.transfer_every - 1
            ):
                dst = (cpu + 1) % n
                src = (cpu - 1) % n
                offset = (i % 4) * CACHE_LINE_BYTES
                yield ("s", dst, xfer[cpu].addr(offset), CACHE_LINE_BYTES)
                yield ("v", src)
                continue
            roll = rng()
            if roll <= lock_cut:
                # Lock-protected RMW: lock k always guards the same line so
                # the critical section actually serialises its writers.
                line_idx = pick_line()
                addr = word_addr(line_idx)
                yield ("l", ("randmem.lock", line_idx))
                yield ("r", addr)
                yield ("w", addr)
                yield ("u", ("randmem.lock", line_idx))
            elif roll <= lock_cut + write_cut:
                yield ("w", word_addr(pick_line()))
            else:
                yield ("r", word_addr(pick_line()))
            if rng() & 7 == 0:
                yield ("c", 1 + rng() % 8)
        yield ("b", ("randmem", "end"))
