"""LU — blocked dense linear algebra (Table 3.5).

The SPLASH-2 blocked LU factorization: an M x M matrix of b x b blocks,
2-D-scattered over a pr x pc processor grid, with each processor's blocks
allocated in its local memory.  At step k the owner factors the diagonal
block, perimeter owners update row/column k against it, and interior owners
update their blocks against the perimeter — so reads of remote blocks hit
data freshly written by the block's home processor, giving the paper's mix of
"remote clean" (67.1%) and "remote dirty at home" (31.9%) with a very low
overall miss rate (compute-dominated: 2b^3 flops per block update).

Paper problem size: 512x512, 16x16 blocks.  Default here: 128x128.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Tuple

from ..common.errors import ConfigError
from ..common.params import MachineConfig
from .base import OpBuilder, Workload
from .placement import AddressSpace

ELEM_BYTES = 8

__all__ = ["LUWorkload"]


def _proc_grid(n_procs: int) -> Tuple[int, int]:
    pr = int(math.sqrt(n_procs))
    while n_procs % pr:
        pr -= 1
    return pr, n_procs // pr


class LUWorkload(Workload):
    name = "lu"
    paper_problem = "512x512 matrix, 16x16 blocks"

    def __init__(self, matrix: int = 128, block: int = 16,
                 flops_per_update: float = 1.5):
        if matrix % block:
            raise ConfigError("matrix size must be a multiple of the block size")
        self.matrix = matrix
        self.block = block
        self.nblocks = matrix // block
        self.flops_per_update = flops_per_update

    def owner(self, bi: int, bj: int, n_procs: int) -> int:
        pr, pc = _proc_grid(n_procs)
        return (bi % pr) * pc + (bj % pc)

    def build(self, config: MachineConfig):
        space = AddressSpace(config)
        B = self.nblocks
        block_bytes = self.block * self.block * ELEM_BYTES
        # Each block is allocated contiguously at its owner's node (the
        # SPLASH-2 LU data layout).
        block_region: Dict[Tuple[int, int], object] = {}
        for bi in range(B):
            for bj in range(B):
                node = self.owner(bi, bj, config.n_procs)
                block_region[(bi, bj)] = space.alloc(
                    block_bytes, policy="node", node=node,
                    name=f"lu.block[{bi},{bj}]",
                )
        return [
            self._stream(config, cpu, block_region)
            for cpu in range(config.n_procs)
        ]

    def _stream(self, config: MachineConfig, cpu: int, blocks
                ) -> Iterator[Tuple]:
        B = self.nblocks
        b = self.block
        P = config.n_procs
        ops = OpBuilder(work_per_ref=0.5)

        def sweep_block(region, writes: bool = True, work: float = 0.0):
            """Touch every element of a block row-wise."""
            for i in range(b):
                for j in range(b):
                    addr = region.addr((i * b + j) * ELEM_BYTES)
                    yield from ops.read(addr)
                    if work:
                        yield from ops.compute(work)
                    if writes:
                        yield from ops.write(addr)

        def read_block(region):
            """Stream a remote block through the cache (reads only)."""
            for i in range(b):
                for j in range(0, b, 16):  # all 16 words of each cache line
                    yield from ops.read(region.addr((i * b + j) * ELEM_BYTES),
                                        refs=min(16, b))

        # Initialization: every owner fills its blocks (local, cold).
        for (bi, bj), region in blocks.items():
            if self.owner(bi, bj, P) == cpu:
                yield from sweep_block(region, writes=True)
        yield from ops.flush()
        yield ("b", "lu.init")

        for k in range(B):
            # 1. Diagonal factorization by its owner: ~b^3/3 flops.
            if self.owner(k, k, P) == cpu:
                yield from sweep_block(blocks[(k, k)], writes=True,
                                       work=self.flops_per_update * b / 3)
            yield from ops.flush()
            yield ("b", ("lu.diag", k))
            # 2. Perimeter updates: row k and column k against the diagonal.
            for t in range(k + 1, B):
                for (bi, bj) in ((k, t), (t, k)):
                    if self.owner(bi, bj, P) == cpu:
                        yield from read_block(blocks[(k, k)])
                        yield from sweep_block(blocks[(bi, bj)], writes=True,
                                               work=self.flops_per_update * b)
            yield from ops.flush()
            yield ("b", ("lu.perim", k))
            # 3. Interior updates: A[i][j] -= A[i][k] * A[k][j].
            for bi in range(k + 1, B):
                for bj in range(k + 1, B):
                    if self.owner(bi, bj, P) == cpu:
                        yield from read_block(blocks[(bi, k)])
                        yield from read_block(blocks[(k, bj)])
                        yield from sweep_block(blocks[(bi, bj)], writes=True,
                                               work=2 * self.flops_per_update * b)
            yield from ops.flush()
            yield ("b", ("lu.inner", k))
