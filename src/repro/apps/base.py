"""Workload framework.

A workload produces one *operation stream* per processor (the tuples consumed
by :class:`repro.processor.cpu.CPU`).  Streams are generated lazily from the
real algorithmic structure of each application — reference addresses come
from actual index computations (FFT transposes, LU block sweeps, radix
permutations, grid stencils, tree walks), and compute time between references
is charged per algorithm phase.  This plays the role of the paper's Tango
Lite reference generator.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..common.params import MachineConfig
from .placement import AddressSpace, Region

__all__ = ["Workload", "OpBuilder", "rng_stream"]


class Workload:
    """Base class: subclasses implement :meth:`streams`."""

    #: short name used by the harness and in tables
    name = "workload"
    #: paper problem size (documentation only; defaults are scaled down)
    paper_problem = ""

    def build(self, config: MachineConfig) -> List[Iterator[Tuple]]:
        """Return one op stream per processor for this machine config."""
        space = AddressSpace(config)
        return [
            self.streams(config, space, cpu) for cpu in range(config.n_procs)
        ]

    def streams(self, config: MachineConfig, space: AddressSpace,
                cpu: int) -> Iterator[Tuple]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class OpBuilder:
    """Helper accumulating compute cycles so generators emit few tuples.

    Usage inside a stream generator::

        ops = OpBuilder(work_per_ref=2.0)
        yield from ops.read(addr)
        yield from ops.compute(50)
        yield from ops.flush()
    """

    __slots__ = ("work_per_ref", "_pending", "threshold", "refs_per_access")

    def __init__(self, work_per_ref: float = 0.0, threshold: float = 16.0,
                 refs_per_access: int = 1):
        self.work_per_ref = work_per_ref
        self._pending = 0.0
        self.threshold = threshold
        # How many spatially-local word references each emitted access stands
        # for (real code walks several words of a line per element touched).
        self.refs_per_access = refs_per_access

    def read(self, addr: int, refs: int = 0):
        k = refs or self.refs_per_access
        self._pending += self.work_per_ref * k
        if self._pending >= self.threshold:
            yield ("c", self._pending)
            self._pending = 0.0
        yield ("r", addr, k) if k > 1 else ("r", addr)

    def write(self, addr: int, refs: int = 0):
        k = refs or self.refs_per_access
        self._pending += self.work_per_ref * k
        if self._pending >= self.threshold:
            yield ("c", self._pending)
            self._pending = 0.0
        yield ("w", addr, k) if k > 1 else ("w", addr)

    def compute(self, cycles: float):
        self._pending += cycles
        if self._pending >= self.threshold:
            yield ("c", self._pending)
            self._pending = 0.0

    def flush(self):
        if self._pending > 0:
            yield ("c", self._pending)
            self._pending = 0.0


def rng_stream(seed: int):
    """A tiny deterministic PRNG (xorshift) — keeps workloads reproducible
    without pulling in module-level random state."""
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF

    def next_u32() -> int:
        nonlocal state
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        return state

    return next_u32
