"""Workloads: the paper's six parallel applications and the OS workload.

Each workload generates per-processor operation streams from the real
algorithmic structure of the application (see DESIGN.md for the substitution
argument versus the paper's Tango Lite / SimOS trace generation).
"""

from .barnes import BarnesWorkload
from .base import OpBuilder, Workload, rng_stream
from .fft import FFTWorkload
from .lu import LUWorkload
from .mp3d import MP3DWorkload
from .ocean import OceanWorkload
from .openloop import OpenLoopWorkload
from .osload import OSWorkload
from .placement import AddressSpace, Region
from .radix import RadixWorkload
from .randmem import RandMemWorkload

#: The paper's application suite (Table 3.5), with default scaled problem
#: sizes.  The OS workload runs on 8 processors in the paper's experiments.
PAPER_APPS = {
    "barnes": BarnesWorkload,
    "fft": FFTWorkload,
    "lu": LUWorkload,
    "mp3d": MP3DWorkload,
    "ocean": OceanWorkload,
    "os": OSWorkload,
    "radix": RadixWorkload,
}

__all__ = [
    "AddressSpace",
    "Region",
    "Workload",
    "OpBuilder",
    "rng_stream",
    "BarnesWorkload",
    "FFTWorkload",
    "LUWorkload",
    "MP3DWorkload",
    "OceanWorkload",
    "OSWorkload",
    "OpenLoopWorkload",
    "RadixWorkload",
    "RandMemWorkload",
    "PAPER_APPS",
]
