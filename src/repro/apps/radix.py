"""Radix — high-performance parallel sorting (Table 3.5).

The SPLASH-2 radix sort: per digit, each processor histograms its local block
of keys, the histograms are combined into global ranks, and the keys are
*permuted* into a destination array.  The permutation scatters writes across
every processor's partition; on the next pass each processor reads back its
own partition, whose lines were last written by remote processors — the
signature "local dirty remote" misses that dominate the paper's Radix run
(76.0% in Table 4.1).

Paper problem size: 256K integer keys, radix 256.  Default: 16K keys.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..common.errors import ConfigError
from ..common.params import MachineConfig
from .base import OpBuilder, Workload, rng_stream
from .placement import AddressSpace

KEY_BYTES = 8

__all__ = ["RadixWorkload"]


class RadixWorkload(Workload):
    name = "radix"
    paper_problem = "256K integer keys, radix=256"

    def __init__(self, keys: int = 32768, radix: int = 64,
                 key_bits: int = 12, seed: int = 42):
        if radix & (radix - 1):
            raise ConfigError("radix must be a power of two")
        self.n_keys = keys
        self.radix = radix
        self.key_bits = key_bits
        self.seed = seed
        self.digit_bits = radix.bit_length() - 1
        self.n_passes = (key_bits + self.digit_bits - 1) // self.digit_bits

    # -- the logical sort (computed at build time, like a trace generator) -----

    def _plan(self, n_procs: int) -> List[List[List[Tuple[int, int]]]]:
        """For each pass and processor: [(src_global_index, dst_global_index)]."""
        rng = rng_stream(self.seed)
        mask = (1 << self.key_bits) - 1
        keys = [rng() & mask for _ in range(self.n_keys)]
        order = list(range(self.n_keys))  # order[i] = key id at position i
        chunk = self.n_keys // n_procs
        plan: List[List[List[Tuple[int, int]]]] = []
        for p in range(self.n_passes):
            shift = p * self.digit_bits
            digit_of = [(keys[kid] >> shift) & (self.radix - 1) for kid in order]
            # Stable counting sort of positions by digit, processor-major as
            # in SPLASH (processor 0's keys with digit d precede processor
            # 1's keys with digit d).
            counts = [0] * self.radix
            for d in digit_of:
                counts[d] += 1
            starts = [0] * self.radix
            acc = 0
            for d in range(self.radix):
                starts[d] = acc
                acc += counts[d]
            dest = [0] * self.n_keys
            cursor = starts[:]
            for i in range(self.n_keys):
                d = digit_of[i]
                dest[i] = cursor[d]
                cursor[d] += 1
            per_proc: List[List[Tuple[int, int]]] = [
                [(i, dest[i]) for i in range(cpu * chunk, (cpu + 1) * chunk)]
                for cpu in range(n_procs)
            ]
            plan.append(per_proc)
            new_order = [0] * self.n_keys
            for i in range(self.n_keys):
                new_order[dest[i]] = order[i]
            order = new_order
        return plan

    # -- stream generation ---------------------------------------------------------

    def build(self, config: MachineConfig):
        if self.n_keys % config.n_procs:
            raise ConfigError("key count must divide evenly among processors")
        space = AddressSpace(config)
        nbytes = self.n_keys * KEY_BYTES
        arrays = [
            space.alloc(nbytes, policy="block", name="radix.a0"),
            space.alloc(nbytes, policy="block", name="radix.a1"),
        ]
        hist_bytes = self.radix * KEY_BYTES
        histograms = space.alloc_striped(hist_bytes, name="radix.hist")
        ranks = space.alloc(hist_bytes, policy="round_robin", name="radix.rank")
        plan = self._plan(config.n_procs)
        return [
            self._stream(config, cpu, arrays, histograms, ranks, plan)
            for cpu in range(config.n_procs)
        ]

    def _stream(self, config: MachineConfig, cpu: int, arrays, histograms,
                ranks, plan) -> Iterator[Tuple]:
        P = config.n_procs
        chunk = self.n_keys // P
        ops = OpBuilder(work_per_ref=2.5)

        # Key generation: fill the local block of the initial array.
        first = arrays[0]
        for i in range(cpu * chunk, (cpu + 1) * chunk, 16):
            yield from ops.write(first.element(i, KEY_BYTES), refs=16)
        yield from ops.flush()
        yield ("b", "radix.init")

        for p in range(self.n_passes):
            src = arrays[p % 2]
            dst = arrays[(p + 1) % 2]
            moves = plan[p][cpu]
            # Phase 1: local histogram over this processor's block of the
            # current source array (lines last written by remote permuters).
            for i in range(cpu * chunk, (cpu + 1) * chunk):
                yield from ops.read(src.element(i, KEY_BYTES))
                yield from ops.write(
                    histograms[cpu].element(i % self.radix, KEY_BYTES)
                )
            yield from ops.flush()
            yield ("b", ("radix.hist", p))
            # Phase 2: global rank computation — read every processor's
            # histogram for this processor's slice of the digit range.
            lo = cpu * self.radix // P
            hi = (cpu + 1) * self.radix // P
            for d in range(lo, hi):
                for q in range(P):
                    yield from ops.read(histograms[q].element(d, KEY_BYTES))
                yield from ops.write(ranks.element(d, KEY_BYTES))
            yield from ops.flush()
            yield ("b", ("radix.rank", p))
            # Phase 3: permutation — scatter local keys to their global
            # positions in the destination array.
            for src_i, dst_i in moves:
                yield from ops.read(src.element(src_i, KEY_BYTES))
                yield from ops.write(dst.element(dst_i, KEY_BYTES))
            yield from ops.flush()
            yield ("b", ("radix.perm", p))
