"""Barnes — hierarchical N-body (Barnes-Hut, Table 3.5).

A real Barnes-Hut quadtree is built at trace-generation time: bodies are
partitioned by Morton-order *zones* (the SPLASH-2 costzones scheme), each
processor inserts its zone's bodies into the shared tree, computes centers of
mass for the cells it created, and then walks the tree with the theta opening
criterion for each of its bodies.  Because zone ownership shifts relative to
where bodies and cells are allocated, readers find data dirty in third-party
caches — the paper's dominant "remote dirty remote" misses (52.6%), with
"remote clean" (38.7%) from re-read tree cells.

Paper problem size: 8192 particles, theta = 1.0.  Default: 512 bodies,
2 iterations.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common.params import MachineConfig
from .base import OpBuilder, Workload, rng_stream
from .placement import AddressSpace

BODY_BYTES = 128   # one padded body record per cache line
CELL_BYTES = 128   # one tree cell per cache line

__all__ = ["BarnesWorkload"]


class _Cell:
    __slots__ = ("cx", "cy", "half", "children", "body", "uid", "creator")

    def __init__(self, cx: float, cy: float, half: float, uid: int, creator: int):
        self.cx = cx
        self.cy = cy
        self.half = half
        self.children: List[Optional["_Cell"]] = [None, None, None, None]
        self.body: Optional[int] = None  # body index for leaves
        self.uid = uid
        self.creator = creator


class _TreeBuild:
    """One iteration's quadtree, with per-processor access traces."""

    def __init__(self) -> None:
        self.cells: List[_Cell] = []
        self.insert_paths: Dict[int, List[int]] = {}   # body -> cell uids read
        self.created_by: Dict[int, List[int]] = {}     # proc -> cell uids

    def new_cell(self, cx, cy, half, creator) -> _Cell:
        cell = _Cell(cx, cy, half, len(self.cells), creator)
        self.cells.append(cell)
        self.created_by.setdefault(creator, []).append(cell.uid)
        return cell


def _morton(x: float, y: float, bits: int = 10) -> int:
    xi = min((1 << bits) - 1, int(x * (1 << bits)))
    yi = min((1 << bits) - 1, int(y * (1 << bits)))
    code = 0
    for b in range(bits):
        code |= ((xi >> b) & 1) << (2 * b) | ((yi >> b) & 1) << (2 * b + 1)
    return code


class BarnesWorkload(Workload):
    name = "barnes"
    paper_problem = "8192 particles, theta=1.0"

    def __init__(self, bodies: int = 512, iterations: int = 2,
                 theta: float = 1.0, force_work: float = 28.0, seed: int = 7):
        self.n_bodies = bodies
        self.iterations = iterations
        self.theta = theta
        self.force_work = force_work
        self.seed = seed

    # -- the physical model (positions only; structure drives the trace) ---------

    def _positions(self) -> List[List[Tuple[float, float]]]:
        """Per-iteration body positions: a slow pseudo-random drift stands in
        for the integrator (the sharing pattern depends only on the spatial
        distribution, which this preserves)."""
        rng = rng_stream(self.seed)
        pos = [
            (rng() / 2**32, rng() / 2**32) for _ in range(self.n_bodies)
        ]
        frames = [list(pos)]
        for _ in range(self.iterations - 1):
            pos = [
                (
                    min(0.999, max(0.0, x + (rng() / 2**32 - 0.5) * 0.05)),
                    min(0.999, max(0.0, y + (rng() / 2**32 - 0.5) * 0.05)),
                )
                for (x, y) in pos
            ]
            frames.append(list(pos))
        return frames

    # -- trace generation ------------------------------------------------------------

    def _iteration_trace(self, positions, n_procs: int):
        """Build the tree and force traversals for one timestep.

        Returns (tree, zone_of_body, force_reads) where force_reads[body] is
        the list of ('cell'|'body', index) records its walk touches.
        """
        order = sorted(range(self.n_bodies),
                       key=lambda b: _morton(*positions[b]))
        zone_of = {}
        per = self.n_bodies // n_procs
        for rank, body in enumerate(order):
            zone_of[body] = min(n_procs - 1, rank // per)

        build = _TreeBuild()
        root = build.new_cell(0.5, 0.5, 0.5, creator=zone_of[order[0]])

        def quadrant(cell, x, y):
            return (1 if x >= cell.cx else 0) | (2 if y >= cell.cy else 0)

        def child_geom(cell, q):
            h = cell.half / 2
            return (cell.cx + (h if q & 1 else -h),
                    cell.cy + (h if q & 2 else -h), h)

        def insert(body, proc):
            x, y = positions[body]
            path = [root.uid]
            cell = root
            depth = 0
            while True:
                q = quadrant(cell, x, y)
                child = cell.children[q]
                if child is None:
                    leaf = build.new_cell(*child_geom(cell, q), creator=proc)
                    leaf.body = body
                    cell.children[q] = leaf
                    path.append(leaf.uid)
                    break
                if child.body is not None and depth < 24:
                    other = child.body
                    ox, oy = positions[other]
                    child.body = None
                    oq = quadrant(child, ox, oy)
                    grand = build.new_cell(*child_geom(child, oq), creator=proc)
                    grand.body = other
                    child.children[oq] = grand
                path.append(child.uid)
                cell = child
                depth += 1
            build.insert_paths[body] = path

        for body in order:
            insert(body, zone_of[body])

        def walk(body) -> List[Tuple[str, int]]:
            x, y = positions[body]
            touched: List[Tuple[str, int]] = []
            stack = [root]
            while stack:
                cell = stack.pop()
                touched.append(("cell", cell.uid))
                if cell.body is not None:
                    if cell.body != body:
                        touched.append(("body", cell.body))
                    continue
                dx, dy = x - cell.cx, y - cell.cy
                dist = max(1e-6, (dx * dx + dy * dy) ** 0.5)
                if (2 * cell.half) / dist < self.theta and cell is not root:
                    continue  # far enough: use the cell's center of mass
                for child in cell.children:
                    if child is not None:
                        stack.append(child)
            return touched

        force_reads = {b: walk(b) for b in range(self.n_bodies)}
        return build, zone_of, force_reads

    def build(self, config: MachineConfig):
        space = AddressSpace(config)
        P = config.n_procs
        bodies = space.alloc(self.n_bodies * BODY_BYTES, policy="block",
                             name="barnes.bodies")
        # Cell pools: each processor allocates tree cells from a local pool
        # (SPLASH-2 layout); pools are reused across iterations.
        max_cells = 4 * self.n_bodies + 64
        pools = space.alloc_striped(max_cells * CELL_BYTES, name="barnes.cells")
        frames = self._positions()
        traces = [self._iteration_trace(frame, P) for frame in frames]
        return [
            self._stream(config, cpu, bodies, pools, traces)
            for cpu in range(P)
        ]

    def _stream(self, config: MachineConfig, cpu: int, bodies, pools,
                traces) -> Iterator[Tuple]:
        P = config.n_procs
        # Body/cell records span a full line; real code touches many fields
        # per visit (position, mass, children, center of mass).
        ops = OpBuilder(work_per_ref=0.6, refs_per_access=8)

        def cell_addr(build: _TreeBuild, uid: int) -> int:
            creator = build.cells[uid].creator
            return pools[creator].element(uid, CELL_BYTES)

        def body_addr(b: int) -> int:
            return bodies.element(b, BODY_BYTES)

        # Initialization: fill own block of the body array.
        per = self.n_bodies // P
        for b in range(cpu * per, (cpu + 1) * per):
            yield from ops.write(body_addr(b))
        yield from ops.flush()
        yield ("b", "barnes.init")

        for it, (build, zone_of, force_reads) in enumerate(traces):
            mine = [b for b in range(self.n_bodies) if zone_of[b] == cpu]
            # Tree build: insert own zone's bodies, locking the leaf cell.
            for b in mine:
                path = build.insert_paths[b]
                yield from ops.read(body_addr(b))
                for uid in path[:-1]:
                    yield from ops.read(cell_addr(build, uid))
                leaf = path[-1]
                yield ("l", ("cell", it, leaf))
                yield from ops.write(cell_addr(build, leaf))
                yield ("u", ("cell", it, leaf))
            yield from ops.flush()
            yield ("b", ("barnes.tree", it))
            # Center-of-mass pass: cells are partitioned round-robin among
            # processors (as in SPLASH-2), *not* by creator — so a cell ends
            # up dirty in a cache that is usually neither its home nor the
            # next force-phase reader ("remote dirty remote").
            for uid in range(cpu, len(build.cells), P):
                cell = build.cells[uid]
                for child in cell.children:
                    if child is not None:
                        yield from ops.read(cell_addr(build, child.uid))
                yield from ops.write(cell_addr(build, uid))
            yield from ops.flush()
            yield ("b", ("barnes.com", it))
            # Force computation: theta-criterion tree walks.
            for b in mine:
                for kind, idx in force_reads[b]:
                    if kind == "cell":
                        yield from ops.read(cell_addr(build, idx))
                    else:
                        yield from ops.read(body_addr(idx))
                    yield from ops.compute(self.force_work)
                yield from ops.write(body_addr(b))
            yield from ops.flush()
            yield ("b", ("barnes.force", it))
            # Position update for the owned zone.
            for b in mine:
                yield from ops.read(body_addr(b))
                yield from ops.write(body_addr(b))
            yield from ops.flush()
            yield ("b", ("barnes.update", it))
