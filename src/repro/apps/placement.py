"""Shared-address-space allocation with page placement policies.

The machine's physical address space is the concatenation of the per-node
memories; a line's home node is ``addr // memory_bytes_per_node``.  The
allocator hands out *regions* whose 4 KB pages are placed according to a
policy:

* ``round_robin`` — page i on node i mod N (the paper's default for the OS
  workload: "we allocate the physical pages of the machine round-robin").
* ``block``      — contiguous page ranges per node (each processor's slice
  of a block-partitioned array is local).
* ``node``       — every page on one node (used for the hot-spotting
  experiments of Section 4.3: "allocated all of its memory from node zero",
  and for owner-local allocations).

Regions translate byte offsets to physical addresses; applications never
compute physical addresses themselves.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.errors import ConfigError
from ..common.params import MachineConfig
from ..common.units import PAGE_BYTES

__all__ = ["AddressSpace", "Region"]


class Region:
    """A contiguous virtual region backed by placed physical pages."""

    __slots__ = ("name", "nbytes", "_page_base")

    def __init__(self, name: str, nbytes: int, page_bases: List[int]):
        self.name = name
        self.nbytes = nbytes
        self._page_base = page_bases

    def addr(self, offset: int) -> int:
        """Physical address of byte ``offset`` within the region."""
        return self._page_base[offset >> 12] + (offset & 4095)

    def element(self, index: int, elem_bytes: int) -> int:
        """Physical address of fixed-size element ``index``."""
        return self.addr(index * elem_bytes)

    @property
    def n_pages(self) -> int:
        return len(self._page_base)

    def home_of_page(self, page_index: int, bytes_per_node: int) -> int:
        return self._page_base[page_index] // bytes_per_node


class AddressSpace:
    """Bump allocator over the per-node physical memories."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.n_nodes = config.n_procs
        self.bytes_per_node = config.memory_bytes_per_node
        # Stagger each node's first frame (page coloring): without this,
        # the same array offset on every node maps to the same cache sets and
        # remote data conflicts pathologically in the 2-way processor cache.
        self._next = [
            node * self.bytes_per_node + (node * 8) * PAGE_BYTES
            for node in range(self.n_nodes)
        ]
        self._rr_cursor = 0

    def _take_page(self, node: int) -> int:
        base = self._next[node]
        limit = (node + 1) * self.bytes_per_node
        if base + PAGE_BYTES > limit:
            raise ConfigError(f"node {node} out of physical memory")
        self._next[node] = base + PAGE_BYTES
        return base

    def alloc(
        self,
        nbytes: int,
        policy: str = "round_robin",
        node: Optional[int] = None,
        name: str = "",
    ) -> Region:
        """Allocate ``nbytes`` with the given placement policy."""
        n_pages = max(1, (nbytes + PAGE_BYTES - 1) // PAGE_BYTES)
        bases: List[int] = []
        if policy == "round_robin":
            for _ in range(n_pages):
                bases.append(self._take_page(self._rr_cursor))
                self._rr_cursor = (self._rr_cursor + 1) % self.n_nodes
        elif policy == "block":
            for page in range(n_pages):
                owner = min(self.n_nodes - 1, page * self.n_nodes // n_pages)
                bases.append(self._take_page(owner))
        elif policy == "node":
            if node is None:
                raise ConfigError("policy 'node' requires a node id")
            for _ in range(n_pages):
                bases.append(self._take_page(node))
        else:
            raise ConfigError(f"unknown placement policy {policy!r}")
        return Region(name or f"region@{bases[0]:#x}", nbytes, bases)

    def alloc_striped(self, nbytes_per_node: int, name: str = "") -> List[Region]:
        """One local region per node (per-processor private data)."""
        return [
            self.alloc(nbytes_per_node, policy="node", node=node,
                       name=f"{name}[{node}]")
            for node in range(self.n_nodes)
        ]
