"""Ocean — regular-grid iterative codes (Table 3.5).

The SPLASH-2 Ocean kernel: several G x G grids swept with 5-point stencils,
partitioned into square subblocks with each processor's subgrid allocated in
its local memory (the 4-D array layout).  Interior points are local; the
subgrid boundary reads neighbours' edge rows/columns, which their home
processors have just written — the paper's Ocean mix of mostly "local clean"
misses plus "remote dirty at home" communication (51.7% / 37.8% at 1 MB).

Paper problem size: 258x258 grids, 25 grids.  Default: 130x130, 6 grids,
4 sweeps.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from ..common.errors import ConfigError
from ..common.params import MachineConfig
from .base import OpBuilder, Workload
from .placement import AddressSpace

ELEM_BYTES = 8

__all__ = ["OceanWorkload"]


class OceanWorkload(Workload):
    name = "ocean"
    paper_problem = "258x258 grids, 25 grids"

    def __init__(self, grid: int = 130, n_grids: int = 6, sweeps: int = 4,
                 stencil_work: float = 6.0):
        self.grid = grid
        self.n_grids = n_grids
        self.sweeps = sweeps
        self.stencil_work = stencil_work

    def build(self, config: MachineConfig):
        P = config.n_procs
        pr = int(math.sqrt(P))
        while P % pr:
            pr -= 1
        pc = P // pr
        interior = self.grid - 2
        if interior % pr or interior % pc:
            raise ConfigError(
                f"grid interior {interior} not divisible by {pr}x{pc} blocks"
            )
        rows, cols = interior // pr, interior // pc
        space = AddressSpace(config)
        # 4-D array layout: each processor's subgrid (with a halo ring) is one
        # contiguous local region, per grid.
        sub_bytes = (rows + 2) * (cols + 2) * ELEM_BYTES
        subgrids: List[List] = [
            [
                space.alloc(sub_bytes, policy="node", node=cpu,
                            name=f"ocean.g{g}[{cpu}]")
                for cpu in range(P)
            ]
            for g in range(self.n_grids)
        ]
        geometry = (pr, pc, rows, cols)
        return [
            self._stream(config, cpu, subgrids, geometry)
            for cpu in range(P)
        ]

    def _stream(self, config: MachineConfig, cpu: int, subgrids,
                geometry) -> Iterator[Tuple]:
        pr, pc, rows, cols = geometry
        me_r, me_c = divmod(cpu, pc)
        # The 5-point stencil makes ~6 word references per point; all but the
        # leading read hit in rows already resident.
        ops = OpBuilder(work_per_ref=0.3, refs_per_access=4)
        width = cols + 2

        def local(region, i: int, j: int) -> int:
            """Address of halo-coordinate (i, j) in a subgrid (0..rows+1)."""
            return region.addr((i * width + j) * ELEM_BYTES)

        def neighbour(grid_regions, dr: int, dc: int):
            nr, nc = me_r + dr, me_c + dc
            if 0 <= nr < pr and 0 <= nc < pc:
                return grid_regions[nr * pc + nc]
            return None

        def exchange_halo(grid_regions):
            """Read neighbours' edge rows/columns into the local halo."""
            mine = grid_regions[cpu]
            north = neighbour(grid_regions, -1, 0)
            south = neighbour(grid_regions, 1, 0)
            west = neighbour(grid_regions, 0, -1)
            east = neighbour(grid_regions, 0, 1)
            if north is not None:
                for j in range(1, cols + 1, 16):  # row: 16 points per line
                    yield from ops.read(local(north, rows, j), refs=16)
            if south is not None:
                for j in range(1, cols + 1, 16):
                    yield from ops.read(local(south, 1, j), refs=16)
            if west is not None:
                for i in range(1, rows + 1):      # column: one line per point
                    yield from ops.read(local(west, i, cols), refs=1)
            if east is not None:
                for i in range(1, rows + 1):
                    yield from ops.read(local(east, i, 1), refs=1)
            # Copy into own halo ring.
            for j in range(1, cols + 1, 16):
                yield from ops.write(local(mine, 0, j), refs=16)
                yield from ops.write(local(mine, rows + 1, j), refs=16)

        def stencil_sweep(src_regions, dst_regions):
            src = src_regions[cpu]
            dst = dst_regions[cpu]
            for i in range(1, rows + 1):
                for j in range(1, cols + 1):
                    yield from ops.read(local(src, i, j))
                    if j == 1:
                        yield from ops.read(local(src, i - 1, j))
                        yield from ops.read(local(src, i + 1, j))
                    yield from ops.compute(self.stencil_work)
                    yield from ops.write(local(dst, i, j))

        # Initialize all grids (local, cold).
        for g in range(self.n_grids):
            mine = subgrids[g][cpu]
            for i in range(rows + 2):
                for j in range(0, width, 16):
                    yield from ops.write(local(mine, i, j), refs=16)
        yield from ops.flush()
        yield ("b", "ocean.init")

        for sweep in range(self.sweeps):
            for g in range(self.n_grids):
                # Grids are cycled (dst of this phase is src of the next) so
                # every grid is freshly rewritten — boundary reads always find
                # the neighbour's data dirty at its home, as in Ocean.
                src, dst = subgrids[g], subgrids[(g + 1) % self.n_grids]
                yield from exchange_halo(src)
                yield from stencil_sweep(src, dst)
                yield from ops.flush()
                yield ("b", ("ocean.sweep", sweep, g))
