"""Open-loop request traffic for load-vs-tail-latency measurement.

The paper's applications are *closed* systems: each processor issues its
next reference only after the previous one retires, so occupancy-induced
queueing shows up as longer execution time, never as a latency tail.  The
flexibility cost the paper measures (MAGIC occupancy) is precisely what
bends tails in an *open* system, where requests arrive on their own
schedule whether or not the server has caught up.  ``openloop`` is that
front end: each node is driven by a pre-generated arrival schedule
(Poisson or bursty), every request touches Zipf-popular lines out of a
shared contended region, and the request mix is bimodal — cheap point
requests and expensive multi-line scans.

Each request is bracketed by the ``('q', cls, t)`` / ``('e',)`` markers the
CPU understands: ``'q'`` paces the stream to the request's *intended*
arrival time (pre-generated, so measured latency includes any client-side
queueing when the node falls behind — the coordinated-omission correction),
and ``'e'`` fences outstanding misses so the latency clock covers the
request's non-blocking writes.  The :class:`~repro.stats.latency.LatencyMonitor`
observes these markers when attached; without one the stream still paces
identically, so a spec's simulated timing is independent of observation.

Determinism: everything derives from ``rng_stream`` xorshift streams seeded
by (seed, cpu), exactly like ``randmem`` — the same spec replays the same
arrivals, addresses, and mixes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

from ..common.params import MachineConfig
from ..common.units import CACHE_LINE_BYTES, PAGE_BYTES, WORDS_PER_LINE
from .base import Workload, rng_stream

__all__ = ["OpenLoopWorkload", "PROFILES"]

#: byte stride between consecutive hot lines (page + line: spreads homes
#: round-robin across nodes while still colliding in the small L2 — the
#: randmem layout, for the same reasons).
_LINE_STRIDE = PAGE_BYTES + CACHE_LINE_BYTES

#: per-cpu seed spacing (golden-ratio increment keeps streams uncorrelated)
_CPU_SALT = 0x9E3779B9

#: Traffic-shape presets.  ``fft`` is the read-heavy scan shape (long
#: unit-stride bursts, few writes — FFT-class traffic); ``mp3d`` is the
#: write-heavy contended shape (hot Zipf head, many upgrades — MP3D-class);
#: ``uniform`` sits between.  Explicit constructor kwargs override these.
PROFILES: Dict[str, Dict[str, float]] = {
    "uniform": dict(write_frac=0.30, large_frac=0.10, zipf_theta=0.8),
    "fft": dict(write_frac=0.05, large_frac=0.25, zipf_theta=0.6),
    "mp3d": dict(write_frac=0.60, large_frac=0.05, zipf_theta=1.1),
}


class OpenLoopWorkload(Workload):
    """Open-loop arrivals, Zipf popularity, bimodal request mix."""

    name = "openloop"
    paper_problem = "n/a (open-system front end, not a paper application)"

    def __init__(self, seed: int = 0, requests: int = 64,
                 mean_gap: float = 400.0, arrival: str = "poisson",
                 burst_len: int = 8, burst_factor: float = 8.0,
                 profile: str = "uniform", lines: int = 64,
                 zipf_theta: float = None, write_frac: float = None,
                 large_frac: float = None, large_lines: int = 8,
                 think: int = 4):
        if requests < 1:
            raise ValueError("openloop needs at least one request per cpu")
        if mean_gap <= 0:
            raise ValueError("mean_gap must be positive")
        if arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {arrival!r}")
        if profile not in PROFILES:
            raise ValueError(
                f"unknown profile {profile!r} (have {sorted(PROFILES)})")
        preset = PROFILES[profile]
        self.seed = seed
        self.requests = requests
        self.mean_gap = float(mean_gap)
        self.arrival = arrival
        self.burst_len = max(2, burst_len)
        self.burst_factor = max(1.0, burst_factor)
        self.profile = profile
        self.lines = max(1, lines)
        self.zipf_theta = preset["zipf_theta"] if zipf_theta is None \
            else zipf_theta
        self.write_frac = preset["write_frac"] if write_frac is None \
            else write_frac
        self.large_frac = preset["large_frac"] if large_frac is None \
            else large_frac
        self.large_lines = max(2, large_lines)
        self.think = max(0, think)

    # -- shared-state construction ---------------------------------------------

    def _line_addrs(self, space) -> List[int]:
        nbytes = self.lines * _LINE_STRIDE + CACHE_LINE_BYTES
        region = space.alloc(nbytes, policy="round_robin", name="openloop.hot")
        return [region.addr(i * _LINE_STRIDE) for i in range(self.lines)]

    def _zipf_cdf(self, rng) -> Tuple[List[int], List[int]]:
        """Integer CDF (scaled to 2**32) over a shuffled line order, so
        popularity rank decorrelates from home-node placement."""
        order = list(range(self.lines))
        for i in range(self.lines - 1, 0, -1):
            j = rng() % (i + 1)
            order[i], order[j] = order[j], order[i]
        weights = [(i + 1) ** -self.zipf_theta for i in range(self.lines)]
        total = sum(weights)
        cdf: List[int] = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(min(0xFFFFFFFF, int(acc / total * 4294967296.0)))
        cdf[-1] = 0xFFFFFFFF
        return order, cdf

    # -- arrival schedule --------------------------------------------------------

    def _arrivals(self, rng) -> List[float]:
        """Absolute intended arrival times for one node's requests.

        Pre-generated so the schedule is independent of service times: when
        the node falls behind, later requests are already "in the air" and
        their waiting counts against measured latency.
        """
        times: List[float] = []
        t = 0.0
        if self.arrival == "poisson":
            for _ in range(self.requests):
                u = (rng() + 1) / 4294967296.0   # (0, 1]
                t += -self.mean_gap * math.log(u)
                times.append(t)
            return times
        # Bursty: runs of burst_len closely spaced arrivals (gap mean
        # mean_gap/burst_factor) separated by one compensating long gap, so
        # the long-run offered load is exactly 1/mean_gap either way.
        short_mean = self.mean_gap / self.burst_factor
        long_mean = (self.burst_len * self.mean_gap
                     - (self.burst_len - 1) * short_mean)
        position = 0
        for _ in range(self.requests):
            mean = long_mean if position == 0 else short_mean
            u = (rng() + 1) / 4294967296.0
            t += -mean * math.log(u)
            times.append(t)
            position = (position + 1) % self.burst_len
        return times

    def build(self, config: MachineConfig) -> List[Iterator[Tuple]]:
        from .placement import AddressSpace

        space = AddressSpace(config)
        line_addrs = self._line_addrs(space)
        order, cdf = self._zipf_cdf(rng_stream(self.seed))
        return [
            self._stream(cpu, line_addrs, order, cdf)
            for cpu in range(config.n_procs)
        ]

    def streams(self, config, space, cpu):  # pragma: no cover - via build()
        raise NotImplementedError("openloop builds all streams at once")

    # -- per-cpu stream ----------------------------------------------------------

    def _stream(self, cpu: int, line_addrs: List[int], order: List[int],
                cdf: List[int]) -> Iterator[Tuple]:
        rng = rng_stream(self.seed ^ ((cpu + 1) * _CPU_SALT))
        arrivals = self._arrivals(rng)
        write_cut = int(self.write_frac * 4294967296.0)
        large_cut = int(self.large_frac * 4294967296.0)

        def pick_line() -> int:
            u = rng()
            for rank, cut in enumerate(cdf):
                if u <= cut:
                    return order[rank]
            return order[-1]

        for t_arrival in arrivals:
            if rng() <= large_cut:
                # Large request: a unit-stride scan over large_lines
                # consecutive hot lines starting at a Zipf-picked index —
                # every word of every line (the k-reference form).
                start = pick_line()
                yield ("q", "large", t_arrival)
                for i in range(self.large_lines):
                    addr = line_addrs[(start + i) % self.lines]
                    yield ("r", addr, WORDS_PER_LINE)
                if self.think:
                    yield ("c", self.think)
                yield ("e",)
            else:
                # Small request: one point read, maybe a read-modify-write.
                addr = (line_addrs[pick_line()]
                        + (rng() % WORDS_PER_LINE) * 8)
                yield ("q", "small", t_arrival)
                yield ("r", addr)
                if rng() <= write_cut:
                    yield ("w", addr)
                if self.think:
                    yield ("c", self.think)
                yield ("e",)
        yield ("b", ("openloop", "end"))
