"""OS — multiprogramming workload (Table 3.5).

The paper boots IRIX 5.2 under SimOS and runs eight parallel "makes" of a
small C program, with ~50% of time in the kernel.  We substitute a synthetic
multiprogramming workload that exercises the same machine-level behaviour
(see DESIGN.md): each processor runs a compile-like process alternating

* user phases: private data sweeps + compute,
* kernel text: reads of a large shared read-only region (instruction
  fetches: the dominant "remote clean" misses — 58.6% in Table 4.1),
* file-cache operations: lock a hash bucket, read/modify shared buffer
  headers (migratory kernel data),
* VM and scheduler operations: shared tables and a global run-queue lock.

Kernel data pages are placed round-robin across the nodes (the paper's tuned
configuration) or all on node 0 (`placement="node0"`, the original IRIX port
of Section 4.3 that fills one node's memory first and loses 29%).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..common.errors import ConfigError
from ..common.params import MachineConfig
from .base import OpBuilder, Workload, rng_stream
from .placement import AddressSpace

__all__ = ["OSWorkload"]

LINE = 128


class OSWorkload(Workload):
    name = "os"
    paper_problem = '8 "makes" of a 2809-line C program'

    def __init__(self, tasks_per_proc: int = 2, syscalls_per_task: int = 150,
                 user_kb: int = 96, kernel_text_kb: int = 256,
                 buffer_cache_kb: int = 128, placement: str = "round_robin",
                 user_work: float = 80.0, seed: int = 23):
        if placement not in ("round_robin", "node0"):
            raise ConfigError("placement must be 'round_robin' or 'node0'")
        self.tasks_per_proc = tasks_per_proc
        self.syscalls_per_task = syscalls_per_task
        self.user_kb = user_kb
        self.kernel_text_kb = kernel_text_kb
        self.buffer_cache_kb = buffer_cache_kb
        self.placement = placement
        self.user_work = user_work
        self.seed = seed

    def build(self, config: MachineConfig):
        space = AddressSpace(config)
        if self.placement == "node0":
            kernel_policy, kernel_node = "node", 0
        else:
            kernel_policy, kernel_node = "round_robin", None
        kernel_text = space.alloc(self.kernel_text_kb * 1024,
                                  policy=kernel_policy, node=kernel_node,
                                  name="os.ktext")
        buffer_cache = space.alloc(self.buffer_cache_kb * 1024,
                                   policy=kernel_policy, node=kernel_node,
                                   name="os.bufcache")
        page_tables = space.alloc(64 * 1024, policy=kernel_policy,
                                  node=kernel_node, name="os.pagetables")
        run_queue = space.alloc(4096, policy=kernel_policy, node=kernel_node,
                                name="os.runqueue")
        user = space.alloc_striped(self.user_kb * 1024, name="os.user")
        shared = (kernel_text, buffer_cache, page_tables, run_queue)
        return [
            self._stream(config, cpu, user[cpu], shared)
            for cpu in range(config.n_procs)
        ]

    def _stream(self, config: MachineConfig, cpu: int, user, shared
                ) -> Iterator[Tuple]:
        kernel_text, buffer_cache, page_tables, run_queue = shared
        rng = rng_stream(self.seed + cpu * 1013)
        ops = OpBuilder(work_per_ref=0.5)
        text_lines = kernel_text.nbytes // LINE
        buf_lines = buffer_cache.nbytes // LINE
        pt_lines = page_tables.nbytes // LINE
        user_lines = user.nbytes // LINE

        def ifetch(n: int):
            """Kernel instruction fetches: sequential runs from a random
            starting line of the shared (read-only) text."""
            start = rng() % text_lines
            for k in range(n):
                yield from ops.read(
                    kernel_text.addr(((start + k) % text_lines) * LINE),
                    refs=16,
                )

        def user_phase():
            base = rng() % max(1, user_lines - 64)
            for k in range(48):
                addr = user.addr(((base + k) % user_lines) * LINE)
                yield from ops.read(addr, refs=16)
                yield from ops.compute(self.user_work / 48)
                if k % 3 == 0:
                    yield from ops.write(addr, refs=8)

        def file_syscall():
            yield from ifetch(6)
            bucket = rng() % 64
            yield ("l", ("os.buf", bucket))
            for _ in range(3):
                line = rng() % buf_lines
                yield from ops.read(buffer_cache.addr(line * LINE))
            yield from ops.write(buffer_cache.addr((rng() % buf_lines) * LINE))
            yield from ops.flush()
            yield ("u", ("os.buf", bucket))

        def vm_syscall():
            yield from ifetch(4)
            entry = rng() % pt_lines
            yield ("l", ("os.vm", entry % 16))
            yield from ops.read(page_tables.addr(entry * LINE))
            yield from ops.write(page_tables.addr(entry * LINE))
            yield from ops.flush()
            yield ("u", ("os.vm", entry % 16))

        def schedule():
            yield from ifetch(3)
            yield ("l", "os.runq")
            yield from ops.read(run_queue.addr(0))
            yield from ops.write(run_queue.addr(0))
            yield from ops.flush()
            yield ("u", "os.runq")

        for task in range(self.tasks_per_proc):
            for call in range(self.syscalls_per_task):
                yield from user_phase()
                choice = rng() % 8
                if choice < 4:
                    yield from file_syscall()
                elif choice < 7:
                    yield from vm_syscall()
                else:
                    yield from schedule()
            yield from ops.flush()
            yield ("b", ("os.make", task))
