"""FFT — transform methods, high radix (Table 3.5).

The radix-sqrt(N) six-step 1-D FFT of [RSG93]/[WSH94]: the N complex points
are viewed as an n x n matrix (n = sqrt(N)); the algorithm alternates
all-to-all transposes with independent row FFTs.  Each processor owns a
contiguous band of rows, allocated in its local memory, so the transpose
reads columns of data that were just *written* by their home processors —
which is why the paper's FFT read misses are dominated by "remote dirty at
home" (62.1% in Table 4.1).

Paper problem size: 64K complex points.  Default here: 4K points (the
simulator is pure Python); the working-set regimes are recreated by scaling
the processor cache in the experiment configs.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

from ..common.errors import ConfigError
from ..common.params import MachineConfig
from .base import OpBuilder, Workload
from .placement import AddressSpace

COMPLEX_BYTES = 16  # one double-precision complex point

__all__ = ["FFTWorkload"]


class FFTWorkload(Workload):
    name = "fft"
    paper_problem = "64K complex points, radix sqrt(N)"

    def __init__(self, points: int = 16384, butterfly_work: float = 4.0,
                 transpose_work: float = 2.0, placement: str = "block"):
        n = int(round(math.sqrt(points)))
        if n * n != points or n & (n - 1):
            raise ConfigError("points must be an even power of two")
        if placement not in ("block", "node0"):
            raise ConfigError("placement must be 'block' or 'node0'")
        self.points = points
        self.n = n
        self.butterfly_work = butterfly_work
        self.transpose_work = transpose_work
        # 'node0' allocates every array from node zero's memory — the
        # Section 4.3 hot-spotting experiment.
        self.placement = placement

    def build(self, config: MachineConfig):
        space = AddressSpace(config)
        n = self.n
        nbytes = self.points * COMPLEX_BYTES
        if self.placement == "node0":
            policy, node = "node", 0
        else:
            # Row-band allocation: processor p's rows live in its local memory.
            policy, node = "block", None
        src = space.alloc(nbytes, policy=policy, node=node, name="fft.src")
        dst = space.alloc(nbytes, policy=policy, node=node, name="fft.dst")
        roots = space.alloc(n * COMPLEX_BYTES,
                            policy="node" if node is not None else "round_robin",
                            node=node, name="fft.roots")
        return [
            self._stream(config, cpu, src, dst, roots)
            for cpu in range(config.n_procs)
        ]

    def _stream(self, config: MachineConfig, cpu: int, src, dst, roots
                ) -> Iterator[Tuple]:
        n = self.n
        P = config.n_procs
        rows = range(cpu * n // P, (cpu + 1) * n // P)
        # Each complex point is two doubles; a butterfly also touches
        # temporaries, so every element access stands for two word references.
        ops = OpBuilder(work_per_ref=0.5, refs_per_access=2)

        def elem(region, row: int, col: int) -> int:
            return region.addr((row * n + col) * COMPLEX_BYTES)

        def row_fft(region, row: int):
            """In-place iterative butterflies over one row: log2(n) passes."""
            stages = int(math.log2(n))
            for _stage in range(stages):
                for k in range(n):
                    yield from ops.read(elem(region, row, k))
                    yield from ops.compute(self.butterfly_work)
                    yield from ops.write(elem(region, row, k))

        def transpose(src_region, dst_region):
            """Read columns of src (other processors' rows), write own rows.

            As in the SPLASH-2 FFT, processors stagger their starting row so
            the all-to-all communication does not sweep every home node in
            lock-step (which would create a rolling hot spot)."""
            stagger = cpu * (n // P)
            for i in rows:
                for jj in range(n):
                    j = (jj + stagger) % n
                    yield from ops.read(elem(src_region, j, i))
                    yield from ops.compute(self.transpose_work)
                    yield from ops.write(elem(dst_region, i, j))

        def twiddle(region):
            for i in rows:
                for j in range(n):
                    yield from ops.read(roots.addr((j % n) * COMPLEX_BYTES))
                    yield from ops.read(elem(region, i, j))
                    yield from ops.write(elem(region, i, j))

        # Phase 0: initialize own rows of src (cold, local).
        for i in rows:
            for j in range(n):
                yield from ops.write(elem(src, i, j))
        yield from ops.flush()
        yield ("b", "fft.init")
        # Step 1: transpose src -> dst.
        yield from transpose(src, dst)
        yield from ops.flush()
        yield ("b", "fft.t1")
        # Step 2: row FFTs on dst.
        for i in rows:
            yield from row_fft(dst, i)
        # Step 3: twiddle multiply.
        yield from twiddle(dst)
        yield from ops.flush()
        yield ("b", "fft.fft1")
        # Step 4: transpose dst -> src.
        yield from transpose(dst, src)
        yield from ops.flush()
        yield ("b", "fft.t2")
        # Step 5: row FFTs on src.
        for i in rows:
            yield from row_fft(src, i)
        yield from ops.flush()
        yield ("b", "fft.fft2")
        # Step 6: final transpose src -> dst.
        yield from transpose(src, dst)
        yield from ops.flush()
        yield ("b", "fft.done")
