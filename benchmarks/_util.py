"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper, prints it with
the paper's values alongside, saves it under ``benchmarks/out/``, and asserts
the qualitative *shape* the paper reports (who wins, roughly by how much).
Absolute cycle counts are not expected to match: the substrate is a pure-
Python simulator with scaled problem sizes (see DESIGN.md / EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Sequence

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def prefetch(specs: Sequence[dict]) -> None:
    """Execute run specs up front, farmed across ``REPRO_JOBS`` worker
    processes (serial when unset/1).  Results land in the in-process memo and
    the on-disk cache, so the benchmark's own ``run_app`` calls are instant.
    """
    from repro.harness import runfarm

    if runfarm.default_jobs() > 1 and len(specs) > 1:
        runfarm.run_specs(specs)


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def pct(x: float) -> str:
    return f"{100.0 * x:.1f}%"


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
