"""Perf-history ledger: one JSONL record per perf_smoke run, keyed by git SHA.

``perf_smoke.py`` appends raw measurements to ``BENCH_kernel.json`` and
``BENCH_e2e.json``; this script folds the latest record of each into a
single ``benchmarks/BENCH_history.jsonl`` line stamped with the current
commit, then runs two checks:

* **absolute floors** (hard): ``references_per_sec`` and
  ``kernel_events_per_sec`` must clear :data:`ABS_FLOORS`; a breach exits
  2 and fails CI outright (which then uploads a profile artifact for
  triage).  The floors pin the callback-core fast path — a relative check
  alone could be walked down a few percent per commit.
* **relative regressions** (default 10 %): every throughput metric is
  compared against the most recent prior entry that has it; a worsening
  beyond the threshold exits 1 (CI passes ``--soft-regressions`` so
  runner noise annotates instead of failing).

::

    PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python benchmarks/perf_smoke.py --e2e
    python benchmarks/history.py              # append + check
    python benchmarks/history.py --check-only # check without appending
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
KERNEL_FILE = os.path.join(BENCH_DIR, "BENCH_kernel.json")
E2E_FILE = os.path.join(BENCH_DIR, "BENCH_e2e.json")
HISTORY_FILE = os.path.join(BENCH_DIR, "BENCH_history.jsonl")

#: Tracked metrics and which direction is better.
METRICS: Dict[str, str] = {
    "kernel_events_per_sec": "higher",
    "references_per_sec": "higher",
    "e2e_fft1k_seconds": "lower",
    "sweep_seconds": "lower",
    # Model-checker throughput (oracle-checked references/second on the
    # fixed perf_smoke randmem run): gates SWMR/SC oracle overhead.
    "check_ops_per_sec": "higher",
    # Observability-layer throughput (completed open-loop requests/second
    # on the fixed monitored+traced perf_smoke openloop run): gates the
    # latency monitor's and request markers' observation overhead.
    "loadlat_reqs_per_sec": "higher",
    # Critical-path extraction throughput (wait segments + retired
    # transactions processed per second of extraction on the fixed traced
    # perf_smoke fft run): gates the backward-walk cost every traced run
    # and every whatif baseline pays at end of run.
    "critpath_spans_per_sec": "higher",
}

DEFAULT_THRESHOLD = 0.10

#: Hard absolute floors (same units as the metric).  Unlike the relative
#: regression check — which only compares adjacent commits and so can be
#: walked down a few percent at a time — a floor breach always fails the
#: gate.  Values sit well under the macro-op-fusion reference-container
#: measurements (≈570k refs/s on the cold Figure 4.1 sweep, ≈1.5M ev/s on
#: the coroutine kernel microbench), so CI jitter clears them but losing
#: the fusion layer or the callback fast path cannot.
ABS_FLOORS: Dict[str, float] = {
    "references_per_sec": 460_000,
    "kernel_events_per_sec": 1_000_000,
}

#: Per-app/kind hard floors on the cold-sweep simulation rate
#: (``per_app_refs_per_sec`` in the latest ``BENCH_e2e.json`` record),
#: ~50 % under reference-container measurements (apps differ by >10x in
#: refs/s because miss traffic per reference differs): wide enough for
#: runner noise, tight enough that one app losing its fusion eligibility
#: or fast path entirely trips its own named floor even when the
#: aggregate stays above ``ABS_FLOORS``.
PER_APP_FLOORS: Dict[str, float] = {
    "barnes/flash": 150_000,
    "barnes/ideal": 240_000,
    "fft/flash": 380_000,
    "fft/ideal": 480_000,
    "lu/flash": 170_000,
    "lu/ideal": 250_000,
    "mp3d/flash": 30_000,
    "mp3d/ideal": 50_000,
    "ocean/flash": 260_000,
    "ocean/ideal": 400_000,
    "os/flash": 300_000,
    "os/ideal": 480_000,
    "radix/flash": 80_000,
    "radix/ideal": 110_000,
}


def git_sha() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=BENCH_DIR, timeout=10)
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def latest_record(path: str) -> Optional[dict]:
    """Last entry of a ``BENCH_*.json`` list file, or None."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            records = json.load(fh)
    except ValueError:
        return None
    return records[-1] if records else None


def build_record(sha: Optional[str] = None) -> dict:
    """One history line: stamp + whatever tracked metrics the latest
    perf_smoke records carry (a kernel-only CI run simply has no sweep
    metrics; the regression check skips what is absent)."""
    record = {
        "sha": sha if sha is not None else git_sha(),
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
    }
    for path in (KERNEL_FILE, E2E_FILE):
        source = latest_record(path)
        if source:
            for metric in METRICS:
                if metric in source:
                    record[metric] = source[metric]
    return record


def load_history(path: str = HISTORY_FILE) -> List[dict]:
    """All parseable history lines, oldest first (torn lines skipped)."""
    records: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    return records


def append_record(record: dict, path: str = HISTORY_FILE) -> None:
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def check_regressions(history: List[dict], record: dict,
                      threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Compare ``record`` against the most recent prior entry carrying each
    metric; return one message per metric whose *worsening* exceeds
    ``threshold`` (improvements never flag)."""
    flags: List[str] = []
    for metric, direction in METRICS.items():
        if metric not in record:
            continue
        baseline = None
        for prior in reversed(history):
            if metric in prior:
                baseline = prior
                break
        if baseline is None:
            continue
        base = float(baseline[metric])
        new = float(record[metric])
        if base <= 0:
            continue
        change = (new - base) / base
        worse = -change if direction == "higher" else change
        if worse > threshold:
            flags.append(
                f"{metric}: {base:g} -> {new:g} ({change:+.1%};"
                f" worse by {worse:.1%} > {threshold:.0%} threshold,"
                f" baseline {baseline.get('sha', '?')[:12]})")
    return flags


def check_floors(record: dict,
                 floors: Optional[Dict[str, float]] = None) -> List[str]:
    """Absolute-floor breaches in ``record``: one message per tracked
    metric that fell below its :data:`ABS_FLOORS` value.  A metric the
    record does not carry is skipped (a kernel-only run has no sweep)."""
    if floors is None:
        floors = ABS_FLOORS
    breaches: List[str] = []
    for metric, floor in floors.items():
        if metric not in record:
            continue
        value = float(record[metric])
        if value < floor:
            breaches.append(
                f"{metric}: {value:g} < hard floor {floor:g}"
                f" ({(floor - value) / floor:.1%} below)")
    return breaches


def check_app_floors(e2e_record: Optional[dict],
                     floors: Optional[Dict[str, float]] = None) -> List[str]:
    """Per-app/kind floor breaches against the latest e2e sweep record's
    ``per_app_refs_per_sec`` map.  Missing record, missing map (a record
    from before the fusion census), or an app/kind the map lacks are all
    skipped — the check tightens only where measurements exist."""
    if floors is None:
        floors = PER_APP_FLOORS
    if not e2e_record:
        return []
    rates = e2e_record.get("per_app_refs_per_sec")
    if not isinstance(rates, dict):
        return []
    breaches: List[str] = []
    for key, floor in sorted(floors.items()):
        value = rates.get(key)
        if value is None:
            continue
        if float(value) < floor:
            breaches.append(
                f"{key}: {float(value):g} refs/s < hard floor {floor:g}"
                f" ({(floor - float(value)) / floor:.1%} below)")
    return breaches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="append the latest perf_smoke measurements to the"
                    " perf-history ledger, enforce the absolute throughput"
                    " floors, and flag relative regressions")
    parser.add_argument("--history", default=HISTORY_FILE, metavar="FILE",
                        help=f"history ledger (default: {HISTORY_FILE})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        metavar="R",
                        help="relative worsening that flags a regression"
                             " (default: 0.10)")
    parser.add_argument("--check-only", action="store_true",
                        help="compare without appending a new record")
    parser.add_argument("--soft-regressions", action="store_true",
                        help="print relative regressions without failing"
                             " (absolute floors stay hard); CI uses this so"
                             " runner noise annotates instead of failing,"
                             " while a floor breach still fails the job")
    parser.add_argument("--no-floors", action="store_true",
                        help="skip the absolute-floor check (local runs on"
                             " slow hardware)")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON report on"
                             " stdout (record, regressions, floor breaches,"
                             " exit status) for CI annotation; exit codes"
                             " are unchanged")
    args = parser.parse_args(argv)

    record = build_record()
    tracked = [m for m in METRICS if m in record]
    if not tracked:
        print("no perf_smoke records found (run benchmarks/perf_smoke.py"
              " first); nothing to do", file=sys.stderr)
        return 0
    history = load_history(args.history)
    flags = check_regressions(history, record, args.threshold)
    breaches: List[str] = []
    if not args.no_floors:
        breaches = check_floors(record)
        breaches += check_app_floors(latest_record(E2E_FILE))
    if not args.check_only:
        append_record(record, args.history)
    status = 2 if breaches else (1 if flags and not args.soft_regressions
                                 else 0)
    if args.json:
        report = {
            "record": record,
            "prior_records": len(history),
            "appended": not args.check_only,
            "regressions": flags,
            "regressions_soft": bool(args.soft_regressions),
            "floor_breaches": breaches,
            "abs_floors": ABS_FLOORS,
            "per_app_floors": PER_APP_FLOORS,
            "status": status,
        }
        print(json.dumps(report, sort_keys=True, indent=2))
        return status
    print(json.dumps(record, sort_keys=True, indent=2))
    action = "checked against" if args.check_only else "appended to"
    print(f"{action} {args.history} ({len(history)} prior record(s))")
    for flag in flags:
        print(f"REGRESSION {flag}", file=sys.stderr)
    for breach in breaches:
        print(f"FLOOR {breach}", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
