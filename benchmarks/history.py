"""Perf-history ledger: one JSONL record per perf_smoke run, keyed by git SHA.

``perf_smoke.py`` appends raw measurements to ``BENCH_kernel.json`` and
``BENCH_e2e.json``; this script folds the latest record of each into a
single ``benchmarks/BENCH_history.jsonl`` line stamped with the current
commit, then compares every throughput metric against the most recent
prior entry that has it and exits nonzero when one regresses by more than
the threshold (default 10 %).  CI runs it as a soft gate after the perf
smoke steps and uploads the history as an artifact, so the bench
trajectory accumulates commit over commit::

    PYTHONPATH=src python benchmarks/perf_smoke.py
    PYTHONPATH=src python benchmarks/perf_smoke.py --e2e
    python benchmarks/history.py              # append + check
    python benchmarks/history.py --check-only # check without appending
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
KERNEL_FILE = os.path.join(BENCH_DIR, "BENCH_kernel.json")
E2E_FILE = os.path.join(BENCH_DIR, "BENCH_e2e.json")
HISTORY_FILE = os.path.join(BENCH_DIR, "BENCH_history.jsonl")

#: Tracked metrics and which direction is better.
METRICS: Dict[str, str] = {
    "kernel_events_per_sec": "higher",
    "references_per_sec": "higher",
    "e2e_fft1k_seconds": "lower",
    "sweep_seconds": "lower",
}

DEFAULT_THRESHOLD = 0.10


def git_sha() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=BENCH_DIR, timeout=10)
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def latest_record(path: str) -> Optional[dict]:
    """Last entry of a ``BENCH_*.json`` list file, or None."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            records = json.load(fh)
    except ValueError:
        return None
    return records[-1] if records else None


def build_record(sha: Optional[str] = None) -> dict:
    """One history line: stamp + whatever tracked metrics the latest
    perf_smoke records carry (a kernel-only CI run simply has no sweep
    metrics; the regression check skips what is absent)."""
    record = {
        "sha": sha if sha is not None else git_sha(),
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
    }
    for path in (KERNEL_FILE, E2E_FILE):
        source = latest_record(path)
        if source:
            for metric in METRICS:
                if metric in source:
                    record[metric] = source[metric]
    return record


def load_history(path: str = HISTORY_FILE) -> List[dict]:
    """All parseable history lines, oldest first (torn lines skipped)."""
    records: List[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    return records


def append_record(record: dict, path: str = HISTORY_FILE) -> None:
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def check_regressions(history: List[dict], record: dict,
                      threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Compare ``record`` against the most recent prior entry carrying each
    metric; return one message per metric whose *worsening* exceeds
    ``threshold`` (improvements never flag)."""
    flags: List[str] = []
    for metric, direction in METRICS.items():
        if metric not in record:
            continue
        baseline = None
        for prior in reversed(history):
            if metric in prior:
                baseline = prior
                break
        if baseline is None:
            continue
        base = float(baseline[metric])
        new = float(record[metric])
        if base <= 0:
            continue
        change = (new - base) / base
        worse = -change if direction == "higher" else change
        if worse > threshold:
            flags.append(
                f"{metric}: {base:g} -> {new:g} ({change:+.1%};"
                f" worse by {worse:.1%} > {threshold:.0%} threshold,"
                f" baseline {baseline.get('sha', '?')[:12]})")
    return flags


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="append the latest perf_smoke measurements to the"
                    " perf-history ledger and flag throughput regressions")
    parser.add_argument("--history", default=HISTORY_FILE, metavar="FILE",
                        help=f"history ledger (default: {HISTORY_FILE})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        metavar="R",
                        help="relative worsening that flags a regression"
                             " (default: 0.10)")
    parser.add_argument("--check-only", action="store_true",
                        help="compare without appending a new record")
    args = parser.parse_args(argv)

    record = build_record()
    tracked = [m for m in METRICS if m in record]
    if not tracked:
        print("no perf_smoke records found (run benchmarks/perf_smoke.py"
              " first); nothing to do", file=sys.stderr)
        return 0
    history = load_history(args.history)
    flags = check_regressions(history, record, args.threshold)
    if not args.check_only:
        append_record(record, args.history)
    print(json.dumps(record, sort_keys=True, indent=2))
    action = "checked against" if args.check_only else "appended to"
    print(f"{action} {args.history} ({len(history)} prior record(s))")
    if flags:
        for flag in flags:
            print(f"REGRESSION {flag}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
