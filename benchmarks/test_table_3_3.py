"""Table 3.3 — memory latencies and PP occupancies, no contention.

Measured by staging each of the five read-miss classes on a 16-node machine
and timing a single read (see repro.harness.micro).
"""

import pytest
from _util import emit, once

from repro.common.params import flash_config, ideal_config
from repro.harness.micro import PAPER_TABLE_3_3, measure_latencies
from repro.harness.tables import render_table
from repro.protocol.coherence import MissClass

LABELS = {
    MissClass.LOCAL_CLEAN: "Local read, clean in memory",
    MissClass.LOCAL_DIRTY_REMOTE: "Local read, dirty in remote cache",
    MissClass.REMOTE_CLEAN: "Remote read, clean in home memory",
    MissClass.REMOTE_DIRTY_HOME: "Remote read, dirty in home cache",
    MissClass.REMOTE_DIRTY_REMOTE: "Remote read, dirty in 3rd node",
}


def test_table_3_3(benchmark):
    def regenerate():
        ideal = measure_latencies(ideal_config(16))
        flash = measure_latencies(flash_config(16))
        return ideal, flash

    ideal, flash = once(benchmark, regenerate)
    rows = []
    for cls in MissClass.ALL:
        paper_ideal, paper_flash, paper_occ = PAPER_TABLE_3_3[cls]
        rows.append((
            LABELS[cls],
            ideal[cls].latency, paper_ideal,
            flash[cls].latency, paper_flash,
            flash[cls].pp_occupancy, paper_occ,
        ))
        assert ideal[cls].latency == pytest.approx(paper_ideal, abs=6)
        assert flash[cls].latency == pytest.approx(paper_flash, abs=8)
        assert flash[cls].latency > ideal[cls].latency
    emit("table_3_3", render_table(
        "Table 3.3 - Memory latencies/occupancies, no contention (10ns cycles)",
        ["Operation", "Ideal", "paper", "FLASH", "paper", "PP occ", "paper"],
        rows,
    ))
