"""Figure 4.2 — execution times at the medium ("64 KB") caches."""

from _util import emit, once, pct, prefetch

from repro.harness import experiments as exp
from repro.harness.runfarm import sweep_specs
from repro.harness.tables import render_table

APPS = ["barnes", "fft", "mp3d", "ocean", "radix"]


def test_fig_4_2(benchmark):
    def regenerate():
        prefetch(sweep_specs(apps=APPS, regime="medium"))
        rows = []
        slowdowns = {}
        for app in APPS:
            flash, ideal = exp.run_flash_ideal(app, regime="medium")
            slow = exp.slowdown(flash, ideal)
            slowdowns[app] = slow
            scale = 100.0 / flash.execution_time
            for result, kind in ((flash, "FLASH"), (ideal, "ideal")):
                b = result.breakdown
                rows.append((
                    app, kind, round(result.execution_time * scale, 1),
                    round(b["busy"] * scale, 1), round(b["read"] * scale, 1),
                    round(b["write"] * scale, 1), round(b["sync"] * scale, 1),
                ))
            rows.append((app, "slowdown", pct(slow), "", "", "", ""))
        return rows, slowdowns

    rows, slowdowns = once(benchmark, regenerate)
    for app, slow in slowdowns.items():
        assert 0 < slow < 0.7, (app, slow)
    # Local-miss-dominated apps stay close to ideal even with the higher
    # miss rates ("applications that require high local memory bandwidth
    # perform only marginally worse on FLASH").
    large_radix = exp.slowdown(*exp.run_flash_ideal("radix", regime="large"))
    assert slowdowns["radix"] < large_radix + 0.05
    emit("fig_4_2", render_table(
        "Figure 4.2 - Execution time breakdown, medium caches (FLASH=100)",
        ["App", "Machine", "Total", "Busy", "Read", "Write", "Sync"], rows,
    ))
