"""Figure 4.3 — execution times at the small ("4 KB") caches."""

from _util import emit, once, pct

from repro.harness import experiments as exp
from repro.harness.tables import render_table
from repro.protocol.coherence import MissClass

APPS = ["fft", "mp3d", "ocean", "radix"]  # Barnes/LU/OS: N/A in the paper


def test_fig_4_3(benchmark):
    def regenerate():
        rows = []
        data = {}
        for app in APPS:
            flash, ideal = exp.run_flash_ideal(app, regime="small")
            slow = exp.slowdown(flash, ideal)
            data[app] = (flash, ideal, slow)
            scale = 100.0 / flash.execution_time
            for result, kind in ((flash, "FLASH"), (ideal, "ideal")):
                b = result.breakdown
                rows.append((
                    app, kind, round(result.execution_time * scale, 1),
                    round(b["busy"] * scale, 1), round(b["read"] * scale, 1),
                    round(b["write"] * scale, 1), round(b["sync"] * scale, 1),
                ))
            rows.append((app, "slowdown", pct(slow), "", "", "", ""))
        return rows, data

    rows, data = once(benchmark, regenerate)
    for app, (flash, ideal, slow) in data.items():
        assert slow > 0
    # Processor utilization drops sharply versus the large caches for the
    # capacity-dominated apps (MP3D is excluded: its large-cache run is
    # already memory-bound with heavy sync, so utilization barely moves).
    for app in ("fft", "ocean", "radix"):
        flash = data[app][0]
        large = exp.run_app(app, regime="large")
        util_small = flash.breakdown["busy"] / sum(flash.breakdown.values())
        util_large = large.breakdown["busy"] / sum(large.breakdown.values())
        assert util_small < util_large, app
    # FFT/Ocean/Radix become local-miss dominated: their FLASH penalty is
    # small relative to their own communication-dominated large-cache runs.
    for app in ("ocean", "radix"):
        small_dist = data[app][0].read_miss_distribution
        assert small_dist[MissClass.LOCAL_CLEAN] > 0.5, app
    emit("fig_4_3", render_table(
        "Figure 4.3 - Execution time breakdown, small caches (FLASH=100)",
        ["App", "Machine", "Total", "Busy", "Read", "Write", "Sync"], rows,
    ))
