"""Section 5.3 — value of the PP architecture extensions.

"To quantify the effect that the extensions have on overall performance, we
modified our compiler so that it generated code that did not use any of the
special instructions.  We scheduled that code for a single-issue PP ... The
average performance degradation with the non-optimized PP was found to be
40%, and the maximum performance degradation was 137% (for MP3D)."
"""

from _util import emit, once, pct

from repro.harness import experiments as exp
from repro.harness.tables import render_table

BASE_PP = dict(pp_dual_issue=False, pp_special_instructions=False)
APPS = ["barnes", "fft", "lu", "mp3d", "ocean", "radix"]


def test_sec_5_3_ppext(benchmark):
    def regenerate():
        rows = []
        degradations = {}
        for app in APPS:
            optimized = exp.run_app(app, regime="large")
            base = exp.run_app(app, regime="large",
                               config_overrides=BASE_PP)
            degradation = base.execution_time / optimized.execution_time - 1.0
            degradations[app] = degradation
            rows.append((app, pct(degradation)))
        average = sum(degradations.values()) / len(degradations)
        rows.append(("average", pct(average)))
        return rows, degradations, average

    rows, degradations, average = once(benchmark, regenerate)
    # Every app gets slower on the unoptimized PP.
    for app, degradation in degradations.items():
        assert degradation > 0, app
    # The degradation is substantial on average (paper: 40%) ...
    assert average > 0.10
    # ... and worst for the occupancy-bound communication stress test
    # (paper: 137% for MP3D).
    assert degradations["mp3d"] == max(degradations.values())
    assert degradations["mp3d"] > 2 * degradations["lu"]
    emit("sec_5_3_ppext", render_table(
        "Section 5.3 - Slowdown with single-issue, no-special-instruction PP"
        " (paper: avg 40%, max 137% for MP3D)",
        ["App", "degradation"], rows,
    ))
