"""Extension experiment (beyond the paper): protocol flexibility in action.

Section 6: "By taking advantage of flexibility to optimize the protocol and
directory structures, we believe FLASH can be competitive with any real
hardwired design."  This experiment does exactly that: the migratory-data
protocol variant (repro.protocol.migratory) is swapped in — pure handler
changes, no hardware changes — and run on MP3D, whose space cells migrate
from processor to processor (84% remote-dirty-remote misses in Table 4.1).
"""

from _util import emit, once, pct

from repro.common.params import flash_config, ideal_config
from repro.harness import experiments as exp
from repro.harness.tables import render_table
from repro.machine import Machine


def _run(app, protocol):
    return exp.run_app(app, regime="large",
                       config_overrides=dict(protocol=protocol))


def test_ext_migratory(benchmark):
    def regenerate():
        rows = []
        data = {}
        for app in ("mp3d", "barnes", "fft"):
            base = _run(app, "base")
            migratory = _run(app, "migratory")
            speedup = base.execution_time / migratory.execution_time - 1.0
            message_saving = 1.0 - (migratory.network_messages
                                    / base.network_messages)
            data[app] = (base, migratory, speedup, message_saving)
            rows.append((
                app, f"{base.execution_time:.0f}",
                f"{migratory.execution_time:.0f}",
                pct(speedup), pct(message_saving),
                f"{migratory.write_misses} vs {base.write_misses}",
            ))
        return rows, data

    rows, data = once(benchmark, regenerate)
    mp3d_base, mp3d_mig, speedup, message_saving = data["mp3d"]
    # The migratory protocol eliminates upgrades on MP3D's hand-off lines:
    # fewer write misses, fewer network messages, faster execution.
    assert mp3d_mig.write_misses < mp3d_base.write_misses * 0.8
    assert message_saving > 0.05
    assert speedup > 0.0
    # Non-migratory apps must not regress meaningfully.
    for app in ("fft",):
        _b, _m, app_speedup, _s = data[app]
        assert app_speedup > -0.03, app
    emit("ext_migratory", render_table(
        "Extension - migratory protocol variant on FLASH (not in the paper;"
        " demonstrates Section 6's programmability claim)",
        ["App", "base cyc", "migratory cyc", "speedup", "msgs saved",
         "write misses"],
        rows,
    ))
