"""Table 5.3 — DLX substitution cost of each PP special instruction.

Lowers representative uses of each special instruction and reports the
static size and dynamic latency of the substitution code, against the
paper's figures (ffs: 6 instructions, 2 + 4/bit cycles; branch-on-bit:
2-4; field immediates: 1-5; insert: two field immediates plus an or).
"""

from _util import emit, once

from repro.harness.tables import render_table
from repro.pp.assembler import assemble
from repro.pp.emulator import PPEmulator
from repro.pp.lowering import lower_text
from repro.pp.schedule import schedule_pairs

CASES = [
    ("Find first set (bit 5)", "ffs r2, r1\ndone", {1: 0x20}, "6 instr, 2+4/bit"),
    ("Branch on bit 0", "bbs r1, 0, t\nt:\ndone", {1: 1}, "2 or 4 instr"),
    ("Branch on bit 9", "bbs r1, 9, t\nt:\ndone", {1: 512}, "2 or 4 instr"),
    ("Field extract (8 @ 8)", "bfext r2, r1, 8, 8\ndone", {1: 0xABCD},
     "1-5 instr"),
    ("Field insert (8 @ 16)", "bfins r2, r1, 16, 8\ndone", {1: 0x55, 2: 0},
     "2 field imm + or"),
]


def _measure(text, regs, lowered):
    source = lower_text(text) if lowered else text
    instructions = assemble(source)
    body = [i for i in instructions if not i.is_terminal]
    emu = PPEmulator()
    stats = emu.run(
        schedule_pairs(instructions, dual_issue=False), dict(regs)
    )
    return len(body), stats.cycles


def test_table_5_3(benchmark):
    def regenerate():
        rows = []
        for label, text, regs, paper in CASES:
            size, cycles = _measure(text, regs, lowered=False)
            lsize, lcycles = _measure(text, regs, lowered=True)
            rows.append((label, size, cycles, lsize, lcycles, paper))
        return rows

    rows = once(benchmark, regenerate)
    for label, size, cycles, lsize, lcycles, _paper in rows:
        # Every substitution is bigger and at least as slow as the special
        # instruction it replaces.
        assert lsize > size, label
        assert lcycles >= cycles, label
    # Find-first-set: 6-instruction loop, latency grows with bit position.
    ffs_row = rows[0]
    assert ffs_row[3] >= 6
    _, ffs_hi = _measure("ffs r2, r1\ndone", {1: 1 << 12}, lowered=True)
    _, ffs_lo = _measure("ffs r2, r1\ndone", {1: 1 << 1}, lowered=True)
    assert ffs_hi > ffs_lo  # "4 cycles per bit checked"
    # Branch on bit 0 lowers to 2 instructions; higher bits cost more.
    assert rows[1][3] == 2
    assert rows[2][3] >= 3
    emit("table_5_3", render_table(
        "Table 5.3 - Special instructions vs DLX substitution"
        " (sizes in instructions, latencies in single-issue cycles)",
        ["Instruction", "special size", "cycles", "DLX size", "DLX cycles",
         "paper"],
        rows,
    ))
