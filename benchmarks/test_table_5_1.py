"""Table 5.1 — impact of speculative memory operations.

Runs every workload with the jump table's speculative reads enabled and
disabled.  Paper findings under test: a substantial fraction of speculative
reads is useless, yet "speculation is always beneficial", and its benefit
grows at small caches where misses are local.
"""

from _util import emit, once, pct

from repro.harness import experiments as exp
from repro.harness.tables import PAPER_TABLE_5_1, render_table


def _one(app, regime):
    with_spec = exp.run_app(app, regime=regime)
    without = exp.run_app(app, regime=regime,
                          config_overrides=dict(speculative_reads=False))
    useless = with_spec.useless_spec_fraction
    slowdown = without.execution_time / with_spec.execution_time - 1.0
    return useless, slowdown


def test_table_5_1(benchmark):
    def regenerate():
        rows = []
        measured = {}
        for app in exp.APP_ORDER:
            useless, slowdown = _one(app, "large")
            paper_large, paper_small = PAPER_TABLE_5_1[app]
            small = None
            if exp.regime_cache_bytes(app, "small") is not None:
                small = _one(app, "small")
            measured[app] = ((useless, slowdown), small)
            rows.append((
                app,
                pct(useless), pct(paper_large[0] / 100),
                pct(slowdown), pct(paper_large[1] / 100),
                pct(small[0]) if small else "N/A",
                pct(small[1]) if small else "N/A",
            ))
        return rows, measured

    rows, measured = once(benchmark, regenerate)
    for app, (large, small) in measured.items():
        useless, slowdown = large
        # Speculation is always beneficial (paper's headline).
        assert slowdown > -0.02, f"{app}: speculation hurt ({slowdown:.2%})"
        assert 0.0 <= useless <= 1.0
    # Dirty-dominated apps waste many speculative reads (paper: MP3D 67.8%,
    # Radix 59.9%); clean-dominated ones waste few.
    assert measured["mp3d"][0][0] > 0.4
    assert measured["radix"][0][0] > 0.4
    assert measured["lu"][0][0] < measured["mp3d"][0][0]
    # Benefit grows at the small caches for local-bandwidth apps (Ocean:
    # 2.2% -> 21%, Radix: 4.8% -> 17.9%).
    for app in ("ocean", "radix"):
        large, small = measured[app]
        assert small is not None and small[1] > large[1], app
    emit("table_5_1", render_table(
        "Table 5.1 - Speculative memory operations (measured vs paper)",
        ["App", "useless@large", "paper", "slowdn w/o spec", "paper",
         "useless@small", "slowdn w/o spec@small"],
        rows,
    ))
