"""Table 5.2 — PP architecture evaluation.

Runs a workload with the emulator PP backend (handlers actually executed per
invocation signature) and reports the paper's dynamic statistics: static code
size, dual-issue efficiency, special-instruction use, mean pairs per handler
invocation, and handler invocations per processor cache miss.
"""

from _util import emit, once

from repro.harness import experiments as exp
from repro.harness.tables import PAPER_TABLE_5_2, render_table


def test_table_5_2(benchmark):
    def regenerate():
        flash = exp.run_app(
            "fft", regime="large", pp_backend="emulator",
            workload_overrides=dict(points=4096),
        )
        totals = flash.pp_dynamic
        handlers_per_miss = flash.handlers_per_miss
        rows = [
            ("Static code size (KB)",
             round(totals["static_bytes"] / 1024, 1),
             PAPER_TABLE_5_2["static_kb"]),
            ("Dynamic dual-issue efficiency",
             round(totals["dual_issue_efficiency"], 2),
             PAPER_TABLE_5_2["dual_issue_efficiency"]),
            ("Special instruction use",
             round(totals["special_fraction"], 2),
             PAPER_TABLE_5_2["special_fraction"]),
            ("Mean instruction pairs / invocation",
             round(totals["pairs_per_invocation"], 1),
             PAPER_TABLE_5_2["pairs_per_invocation"]),
            ("Handler invocations / cache miss",
             round(handlers_per_miss, 2),
             PAPER_TABLE_5_2["handlers_per_miss"]),
        ]
        return rows, totals, handlers_per_miss

    rows, totals, handlers_per_miss = once(benchmark, regenerate)
    # Dual-issue efficiency: meaningfully above 1 but below the perfect 2
    # (paper: 1.53).
    assert 1.2 < totals["dual_issue_efficiency"] < 1.9
    # Special instructions carry a large share of ALU/branch work (paper 38%).
    assert 0.2 < totals["special_fraction"] < 0.6
    # Handlers are short (paper: 13.5 pairs/invocation).
    assert 5 < totals["pairs_per_invocation"] < 30
    # A miss takes several handler invocations end to end (paper: 3.69).
    assert 2.0 < handlers_per_miss < 6.0
    # Code fits comfortably in the 32 KB MAGIC instruction cache.
    assert totals["static_bytes"] < 32 * 1024
    emit("table_5_2", render_table(
        "Table 5.2 - PP architecture evaluation (emulator backend, FFT)",
        ["Parameter", "measured", "paper"], rows,
    ))
