"""Figure 4.1 — execution time, FLASH vs ideal, large ("1 MB") caches.

Regenerates the stacked-bar data: per application, the normalized execution
time of both machines (FLASH = 100) broken into Busy / Cont / Read / Write /
Sync, plus the headline FLASH-over-ideal slowdown.
"""

from _util import emit, once, pct, prefetch

from repro.harness import experiments as exp
from repro.harness.runfarm import sweep_specs
from repro.harness.tables import PAPER_FIG_4_1_SLOWDOWN, render_table


def test_fig_4_1(benchmark):
    def regenerate():
        prefetch(sweep_specs(regime="large"))
        rows = []
        slowdowns = {}
        for app in exp.APP_ORDER:
            flash, ideal = exp.run_flash_ideal(app, regime="large")
            slow = exp.slowdown(flash, ideal)
            slowdowns[app] = slow
            scale = 100.0 / flash.execution_time
            for result, kind in ((flash, "FLASH"), (ideal, "ideal")):
                b = result.breakdown
                total = result.execution_time * scale
                rows.append((
                    app, kind, round(total, 1),
                    round(b["busy"] * scale, 1), round(b["cont"] * scale, 1),
                    round(b["read"] * scale, 1), round(b["write"] * scale, 1),
                    round(b["sync"] * scale, 1),
                ))
            rows.append((
                app, "slowdown", pct(slow), "",
                "", f"paper {pct(PAPER_FIG_4_1_SLOWDOWN[app])}", "", "",
            ))
        return rows, slowdowns

    rows, slowdowns = once(benchmark, regenerate)
    # Shape assertions (paper: 2-12% for optimized apps, ~25% for MP3D).
    for app, slow in slowdowns.items():
        assert slow > 0, f"{app}: FLASH must be slower than ideal"
        assert slow < 0.60, f"{app}: slowdown {slow:.2%} out of band"
    optimized = [slowdowns[a] for a in ("fft", "lu", "os")]
    assert all(s < 0.25 for s in optimized)
    assert slowdowns["mp3d"] == max(slowdowns.values())  # the stress test
    emit("fig_4_1", render_table(
        "Figure 4.1 - Execution time breakdown, large caches (FLASH=100)",
        ["App", "Machine", "Total", "Busy", "Cont", "Read", "Write", "Sync"],
        rows,
    ))
