"""Section 4.5 — scaling to 64 processors.

With the same problem sizes, 64-processor runs raise the communication to
computation ratio, widening the FLASH/ideal gap (paper: FFT 10% -> 17%,
Ocean -> 12%, LU stays tiny at 0.7%).  Scaling the FFT data set back up
shrinks the gap again (-> 12%).
"""

from _util import emit, once, pct

from repro.harness import experiments as exp
from repro.harness.tables import render_table


def test_sec_4_5_scaling(benchmark):
    def regenerate():
        rows = []
        slow = {}
        for app, overrides in (
            ("fft", {}),
            ("lu", {}),
            ("ocean", {}),
        ):
            f16, i16 = exp.run_flash_ideal(app, regime="large",
                                           workload_overrides=overrides)
            f64, i64 = exp.run_flash_ideal(app, regime="large", n_procs=64,
                                           workload_overrides=overrides)
            s16, s64 = exp.slowdown(f16, i16), exp.slowdown(f64, i64)
            slow[app] = (s16, s64)
            rows.append((app, pct(s16), pct(s64)))
        # FFT with the data set scaled up for the 64-processor machine.
        f64s, i64s = exp.run_flash_ideal(
            "fft", regime="large", n_procs=64,
            workload_overrides=dict(points=65536),
        )
        s_scaled = exp.slowdown(f64s, i64s)
        rows.append(("fft (scaled data)", "-", pct(s_scaled)))
        return rows, slow, s_scaled

    rows, slow, s_scaled = once(benchmark, regenerate)
    # Same problem at 64p: the communication-bound apps lose more ground.
    assert slow["fft"][1] > slow["fft"][0]
    assert slow["ocean"][1] > slow["ocean"][0]
    # LU stays compute-dominated and nearly unaffected (paper: 0.7%).
    assert slow["lu"][1] < 0.25
    # Scaling the data set back up reduces the 64-processor gap.
    assert s_scaled < slow["fft"][1]
    emit("sec_4_5_scaling", render_table(
        "Section 4.5 - FLASH slowdown vs machine size (paper: FFT 10->17%,"
        " Ocean ->12%, LU 0.7%, scaled FFT 12%)",
        ["App", "16 procs", "64 procs"], rows,
    ))
