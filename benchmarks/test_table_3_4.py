"""Table 3.4 — PP occupancies for common operations.

Two backends are compared against the paper: the table cost model (exact by
construction) and the emulated handlers (independently hand-written PP
assembly, so they track the paper within a small factor rather than exactly).
"""

from _util import emit, once

from repro.common.params import flash_config
from repro.harness.tables import render_table
from repro.magic.costmodel import TableCostModel
from repro.pp.costmodel import EmulatedCostModel
from repro.protocol.coherence import Action, Handler
from repro.protocol.messages import Message, MessageType as MT

ROWS = [
    ("Service read miss from memory", Handler.GET_HOME_CLEAN, {}, 11),
    ("Service write miss from memory", Handler.GETX_HOME_CLEAN,
     dict(n_invals=0), 14),
    ("... each invalidation (x5)", Handler.GETX_HOME_CLEAN,
     dict(n_invals=5), 14 + 5 * 13),
    ("Forward request to home node", Handler.MISS_FORWARD, {}, 3),
    ("Forward from home to dirty node", Handler.GET_HOME_FORWARD, {}, 18),
    ("Retrieve data from proc cache", Handler.GET_OWNER, {}, 38),
    ("Forward reply from net to proc", Handler.REPLY_TO_PROC, {}, 2),
    ("Local writeback", Handler.WRITEBACK_LOCAL, {}, 10),
    ("Local replacement hint", Handler.HINT_LOCAL, dict(list_position=1), 7),
    ("Writeback from remote processor", Handler.WRITEBACK_REMOTE, {}, 8),
    ("Remote hint, only sharer", Handler.HINT_REMOTE,
     dict(list_position=1), 17),
    ("Remote hint, 4th on list", Handler.HINT_REMOTE,
     dict(list_position=4), 23 + 14 * 4),
]


def test_table_3_4(benchmark):
    config = flash_config(16)

    def regenerate():
        table = TableCostModel(config)
        emulated = EmulatedCostModel(config)
        msg = Message(MT.GET, 0x40000, 2, 1, 2)
        rows = []
        for label, handler, params, paper in ROWS:
            action = Action(handler, msg, **params)
            rows.append((label, table.cost(action), emulated.cost(action),
                         paper))
        return rows

    rows = once(benchmark, regenerate)
    for label, table_cost, emu_cost, paper in rows:
        assert table_cost == paper, label  # table model is Table 3.4
        assert paper / 3 <= emu_cost <= paper * 3, (
            f"{label}: emulated {emu_cost} vs paper {paper}"
        )
    emit("table_3_4", render_table(
        "Table 3.4 - PP occupancies (10ns cycles)",
        ["Operation", "table model", "emulated handlers", "paper"], rows,
    ))
