"""Section 4.3 — effects of PP occupancy (hot-spotting).

Two experiments from the paper:

* FFT with all memory allocated on node 0 and small caches: node 0's PP
  occupancy is very high (81.6% in the paper) but so is its memory occupancy
  (67.7%), so FLASH loses little (2.6%) relative to the un-hot-spotted case.
* The original (untuned) IRIX port that fills node 0's memory first: maximum
  PP occupancy 81% with memory occupancy only 33% -> a 29% degradation.

The paper's conclusion under test: high PP occupancy hurts only when memory
occupancy is simultaneously low.
"""

from _util import emit, once, pct

from repro.harness import experiments as exp
from repro.harness.tables import render_table


def test_sec_4_3_hotspot(benchmark):
    def regenerate():
        rows = []
        results = {}
        # FFT, small caches, everything allocated from node zero.
        for label, overrides in (
            ("fft spread", {}),
            ("fft node0", dict(placement="node0")),
        ):
            flash, ideal = exp.run_flash_ideal(
                "fft", regime="medium", workload_overrides=overrides
            )
            results[label] = (flash, ideal)
            rows.append((
                label, pct(exp.slowdown(flash, ideal)),
                pct(max(flash.pp_occupancy)),
                pct(max(flash.memory_occupancy)),
            ))
        # The OS workload with round-robin vs fill-node-0 kernel pages.
        for label, overrides in (
            ("os round-robin", dict(placement="round_robin")),
            ("os node0 (untuned IRIX)", dict(placement="node0")),
        ):
            flash, ideal = exp.run_flash_ideal(
                "os", regime="large", workload_overrides=overrides
            )
            results[label] = (flash, ideal)
            rows.append((
                label, pct(exp.slowdown(flash, ideal)),
                pct(max(flash.pp_occupancy)),
                pct(max(flash.memory_occupancy)),
            ))
        return rows, results

    rows, results = once(benchmark, regenerate)
    fft_f, fft_i = results["fft node0"]
    # Node 0 becomes the hot spot: its PP *and* memory occupancy dominate.
    assert max(fft_f.pp_occupancy) == fft_f.pp_occupancy[0]
    assert fft_f.pp_occupancy[0] > 2 * (sum(fft_f.pp_occupancy[1:]) / 15)
    assert fft_f.memory_occupancy[0] > 0.3  # memory is busy too
    os_rr_f, os_rr_i = results["os round-robin"]
    os_n0_f, os_n0_i = results["os node0 (untuned IRIX)"]
    slow_rr = exp.slowdown(os_rr_f, os_rr_i)
    slow_n0 = exp.slowdown(os_n0_f, os_n0_i)
    # The untuned placement hurts FLASH much more than the tuned one
    # (paper: 10% -> 29%).
    assert slow_n0 > slow_rr * 1.5
    assert os_n0_f.pp_occupancy[0] > os_rr_f.pp_occupancy[0]
    emit("sec_4_3_hotspot", render_table(
        "Section 4.3 - Hot-spotting: slowdown vs node-0 PP/memory occupancy\n"
        "(paper: FFT-on-node0 81.6% PP occ but only 2.6% slowdown because\n"
        " memory occ is 67.7%; untuned IRIX 81% PP occ / 33% mem occ -> 29%)",
        ["Experiment", "FLASH slowdown", "max PP occ", "max mem occ"], rows,
    ))
