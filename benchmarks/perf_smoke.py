"""Perf smoke: record the kernel and end-to-end performance trajectory.

Run as a script (``PYTHONPATH=src python benchmarks/perf_smoke.py``) to
measure

* event-kernel throughput (events/second) on a canonical mixed workload of
  future timeouts, zero-delay timeouts, and event triggers — the same traffic
  mix the simulator generates, and
* the wall-clock of one small uncached end-to-end FFT run (FLASH machine),

and append them to ``benchmarks/BENCH_kernel.json`` so future PRs have a
perf trajectory to compare against.  ``test_kernel_throughput.py`` imports
the same workload so the pytest microbenchmark and the smoke record agree.

With ``--e2e`` it additionally runs the full Figure 4.1 sweep (all 14
app/machine combinations at the large regime) cold — no memo, no disk
cache — and appends total wall clock plus aggregate references/second to
``benchmarks/BENCH_e2e.json``.  That is the headline end-to-end number the
optimization PRs are judged on; expect it to take about a minute.

After recording, ``benchmarks/history.py`` folds the latest measurements
into the per-commit ledger ``BENCH_history.jsonl`` and flags >10 %
throughput regressions against the previous entry (CI runs it as a soft
gate).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

BENCH_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_kernel.json")
BENCH_E2E_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "BENCH_e2e.json")

#: Canonical microbenchmark shape: every worker alternates a future timeout,
#: a zero-delay timeout, and an immediately-triggered event wait.
N_WORKERS = 200
N_STEPS = 500
EVENTS_PER_STEP = 3


def kernel_events_per_sec(repeats: int = 3) -> float:
    """Best-of-``repeats`` coroutine-dispatch throughput in events/second.

    Each step is three kernel events driven through generator resume: a
    future Timeout, a zero-delay Timeout, and a pre-triggered Event wait.
    This is the execution model the cold paths still use.
    """
    from repro.sim.engine import Environment

    best = 0.0
    for _ in range(repeats):
        env = Environment()

        def worker(i):
            for step in range(N_STEPS):
                yield env.timeout((i % 7) + 1)
                yield env.timeout(0)
                event = env.event()
                event.succeed(step)
                yield event

        for i in range(N_WORKERS):
            env.process(worker(i))
        start = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - start
        best = max(best, N_WORKERS * N_STEPS * EVENTS_PER_STEP / elapsed)
    return best


class _CallbackWorker:
    """State-machine twin of the coroutine worker: the same three kernel
    events per step (future delay, zero-delay hop, triggered-event wait),
    expressed as scheduled callbacks instead of generator resumes — the
    execution model of the simulator's hot paths, including the pooled
    event draw and inlined ``succeed`` the hot queues use."""

    __slots__ = ("env", "event_cls", "delay", "step")

    def __init__(self, env, event_cls, i):
        self.env = env
        self.event_cls = event_cls
        self.delay = (i % 7) + 1
        self.step = 0
        env.call_later(self.delay, self._after_delay)

    def _after_delay(self) -> None:
        self.env.call_later(0.0, self._after_zero)

    def _after_zero(self) -> None:
        env = self.env
        pool = env._event_pool
        event = pool.pop() if pool else self.event_cls(env)
        event._ok = True
        event._value = self.step  # succeed(step), inlined
        event.callbacks.append(self._after_event)
        env._ready.append(event)

    def _after_event(self, _event) -> None:
        self.step += 1
        if self.step < N_STEPS:
            self.env.call_later(self.delay, self._after_delay)


def kernel_callback_events_per_sec(repeats: int = 3) -> float:
    """Best-of-``repeats`` callback-dispatch throughput in events/second:
    the identical event mix as :func:`kernel_events_per_sec`, driven through
    bare scheduled callbacks (no generator frames to resume)."""
    from repro.sim.engine import Environment, Event

    best = 0.0
    for _ in range(repeats):
        env = Environment()
        workers = [_CallbackWorker(env, Event, i) for i in range(N_WORKERS)]
        start = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - start
        assert all(w.step == N_STEPS for w in workers)
        best = max(best, N_WORKERS * N_STEPS * EVENTS_PER_STEP / elapsed)
    return best


def end_to_end_seconds() -> float:
    """Wall-clock of one small FLASH run, bypassing every cache layer."""
    from repro.harness import experiments

    spec = experiments.normalize_spec(
        "fft", kind="flash", regime="large",
        workload_overrides={"points": 1024},
    )
    start = time.perf_counter()
    experiments._execute(spec)
    return time.perf_counter() - start


def fig41_sweep() -> dict:
    """Cold wall-clock of the full Figure 4.1 sweep, sequential, uncached.

    Runs every (app, kind) spec through ``experiments._execute`` directly so
    neither the in-process memo nor the disk cache can shortcut a run, and
    reports per-app seconds, the total, and aggregate simulated memory
    references per wall-clock second.
    """
    from repro.harness import experiments, runfarm

    per_app: dict = {}
    per_app_refs: dict = {}
    fused: dict = {}
    stepwise: dict = {}
    total_refs = 0
    total_seconds = 0.0
    for spec in runfarm.sweep_specs(regime="large"):
        start = time.perf_counter()
        machine, ops, _ = experiments.build_machine(spec)
        result = machine.run(ops)
        elapsed = time.perf_counter() - start
        key = f"{spec['app']}/{spec['kind']}"
        per_app[key] = round(elapsed, 2)
        per_app_refs[key] = round(result.references / elapsed)
        # Macro-op fusion census: how many handler dispatches ran through
        # the analytic fused chains versus the stepwise pipeline, by
        # message class, summed over nodes (repro.magic.chip /
        # repro.ideal.controller keep the per-controller dicts).
        for node in machine.nodes:
            for source, sink in ((node.controller.dispatch_fused, fused),
                                 (node.controller.dispatch_stepwise, stepwise)):
                for mtype, count in source.items():
                    sink[mtype] = sink.get(mtype, 0) + count
        total_refs += result.references
        total_seconds += elapsed
        print(f"  {key:<14} {elapsed:6.2f}s", file=sys.stderr)
    fused_total = sum(fused.values())
    stepwise_total = sum(stepwise.values())
    return {
        "sweep_seconds": round(total_seconds, 2),
        "references": total_refs,
        "references_per_sec": round(total_refs / total_seconds),
        "per_app_seconds": per_app,
        "per_app_refs_per_sec": per_app_refs,
        "dispatch_modes": {
            "fused_total": fused_total,
            "stepwise_total": stepwise_total,
            "fused_fraction": round(
                fused_total / max(1, fused_total + stepwise_total), 4),
            "fused_by_class": {k: fused[k] for k in sorted(fused)},
            "stepwise_by_class": {k: stepwise[k] for k in sorted(stepwise)},
        },
    }


def check_ops_per_sec() -> float:
    """Model-checker throughput: oracle-checked references per second on a
    fixed small ``randmem`` run (seed 0, 600 ops/cpu, 4 nodes).  Gates the
    oracle's observation overhead — hook regressions in the CPU loop twin
    or the handler stamping show up here before they hurt deep sweeps."""
    from repro.check import CheckSpec, run_check

    spec = CheckSpec(seed=0, ops=600, nodes=4, lines=8)
    start = time.perf_counter()
    report = run_check(spec)
    elapsed = time.perf_counter() - start
    assert report.ok, f"checker found a violation during benchmarking: " \
                      f"{report.error_type}"
    return report.checked_ops / elapsed


def loadlat_reqs_per_sec() -> float:
    """Observability-layer throughput: completed open-loop requests per
    wall-clock second on a fixed monitored+traced ``openloop`` run (seed 0,
    128 requests/node, 8 nodes).  This path carries every observer at once —
    the 'q'/'e' request markers, the latency monitor's sketch feeds, and the
    tracer's per-transaction component forwarding — so a hook that gets
    expensive shows up here before it hurts real loadlat sweeps."""
    from repro.harness import experiments

    spec = experiments.normalize_spec(
        "openloop", kind="flash", regime="large", n_procs=8,
        workload_overrides={"requests": 128, "lines": 32, "mean_gap": 150.0},
        loadlat=True, trace=True,
    )
    start = time.perf_counter()
    result = experiments._execute(spec)
    elapsed = time.perf_counter() - start
    completed = result.load_latency["requests"]["completed"]
    assert completed == 128 * 8, f"openloop bench left requests open: " \
                                 f"{result.load_latency['requests']}"
    return completed / elapsed


def critpath_spans_per_sec() -> float:
    """Critical-path extraction throughput: recorded wait segments plus
    retired transactions processed per second of extraction wall clock, on
    a fixed traced fft run.  Extraction runs once per traced run at end of
    run, so a hook or walk that gets expensive shows up here before it
    slows every ``trace``/``whatif`` invocation."""
    from repro.harness import experiments
    from repro.stats.critpath import extract_critical_path

    spec = experiments.normalize_spec(
        "fft", kind="flash", regime="large",
        workload_overrides={"points": 1024}, trace=True,
    )
    machine, ops, _ = experiments.build_machine(spec)
    result = machine.run(ops)
    tracer = machine.tracer
    work = (sum(len(segs) for segs in tracer.cpu_segments.values())
            + sum(len(recs) for recs in tracer.retired.values()))
    finish = [node.cpu.times.finish_time for node in machine.nodes]
    start = time.perf_counter()
    repeats = 5
    for _ in range(repeats):
        critpath = extract_critical_path(tracer, result.execution_time,
                                         finish)
    elapsed = (time.perf_counter() - start) / repeats
    assert critpath["length"] == result.execution_time, \
        "critical path failed to reconcile during benchmarking"
    return work / elapsed


def append_history(path: str, record: dict) -> int:
    history = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                history = json.load(fh)
        except ValueError:
            history = []
    history.append(record)
    with open(path, "w") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")
    return len(history)


def git_sha() -> str:
    """Current commit SHA, or "unknown" outside a work tree — every bench
    record is attributable to the exact tree it measured."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=os.path.dirname(os.path.abspath(__file__)), timeout=10)
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def machine_stamp() -> dict:
    return {
        "sha": git_sha(),
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def main() -> int:
    if "--e2e" in sys.argv[1:]:
        record = machine_stamp()
        record.update(fig41_sweep())
        count = append_history(BENCH_E2E_FILE, record)
        print(json.dumps(record, indent=2))
        print(f"appended to {BENCH_E2E_FILE} ({count} record(s))")
        return 0
    record = machine_stamp()
    coroutine_rate = round(kernel_events_per_sec())
    callback_rate = round(kernel_callback_events_per_sec())
    record["kernel_events_per_sec"] = coroutine_rate
    # Dispatch-mode breakdown: the same event mix through both execution
    # models, so the hot-path payoff of the callback core stays visible.
    record["dispatch_modes"] = {
        "coroutine_events_per_sec": coroutine_rate,
        "callback_events_per_sec": callback_rate,
        "callback_speedup": round(callback_rate / coroutine_rate, 2),
    }
    record["e2e_fft1k_seconds"] = round(end_to_end_seconds(), 3)
    record["check_ops_per_sec"] = round(check_ops_per_sec())
    record["loadlat_reqs_per_sec"] = round(loadlat_reqs_per_sec())
    record["critpath_spans_per_sec"] = round(critpath_spans_per_sec())
    count = append_history(BENCH_FILE, record)
    print(json.dumps(record, indent=2))
    print(f"appended to {BENCH_FILE} ({count} record(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
