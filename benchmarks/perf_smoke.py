"""Perf smoke: record the kernel and end-to-end performance trajectory.

Run as a script (``PYTHONPATH=src python benchmarks/perf_smoke.py``) to
measure

* event-kernel throughput (events/second) on a canonical mixed workload of
  future timeouts, zero-delay timeouts, and event triggers — the same traffic
  mix the simulator generates, and
* the wall-clock of one small uncached end-to-end FFT run (FLASH machine),

and append them to ``benchmarks/BENCH_kernel.json`` so future PRs have a
perf trajectory to compare against.  ``test_kernel_throughput.py`` imports
the same workload so the pytest microbenchmark and the smoke record agree.

With ``--e2e`` it additionally runs the full Figure 4.1 sweep (all 14
app/machine combinations at the large regime) cold — no memo, no disk
cache — and appends total wall clock plus aggregate references/second to
``benchmarks/BENCH_e2e.json``.  That is the headline end-to-end number the
optimization PRs are judged on; expect it to take about a minute.

After recording, ``benchmarks/history.py`` folds the latest measurements
into the per-commit ledger ``BENCH_history.jsonl`` and flags >10 %
throughput regressions against the previous entry (CI runs it as a soft
gate).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

BENCH_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_kernel.json")
BENCH_E2E_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "BENCH_e2e.json")

#: Canonical microbenchmark shape: every worker alternates a future timeout,
#: a zero-delay timeout, and an immediately-triggered event wait.
N_WORKERS = 200
N_STEPS = 500
EVENTS_PER_STEP = 3


def kernel_events_per_sec(repeats: int = 3) -> float:
    """Best-of-``repeats`` kernel throughput in events/second."""
    from repro.sim.engine import Environment

    best = 0.0
    for _ in range(repeats):
        env = Environment()

        def worker(i):
            for step in range(N_STEPS):
                yield env.timeout((i % 7) + 1)
                yield env.timeout(0)
                event = env.event()
                event.succeed(step)
                yield event

        for i in range(N_WORKERS):
            env.process(worker(i))
        start = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - start
        best = max(best, N_WORKERS * N_STEPS * EVENTS_PER_STEP / elapsed)
    return best


def end_to_end_seconds() -> float:
    """Wall-clock of one small FLASH run, bypassing every cache layer."""
    from repro.harness import experiments

    spec = experiments.normalize_spec(
        "fft", kind="flash", regime="large",
        workload_overrides={"points": 1024},
    )
    start = time.perf_counter()
    experiments._execute(spec)
    return time.perf_counter() - start


def fig41_sweep() -> dict:
    """Cold wall-clock of the full Figure 4.1 sweep, sequential, uncached.

    Runs every (app, kind) spec through ``experiments._execute`` directly so
    neither the in-process memo nor the disk cache can shortcut a run, and
    reports per-app seconds, the total, and aggregate simulated memory
    references per wall-clock second.
    """
    from repro.harness import experiments, runfarm

    per_app: dict = {}
    total_refs = 0
    total_seconds = 0.0
    for spec in runfarm.sweep_specs(regime="large"):
        start = time.perf_counter()
        result = experiments._execute(spec)
        elapsed = time.perf_counter() - start
        key = f"{spec['app']}/{spec['kind']}"
        per_app[key] = round(elapsed, 2)
        total_refs += result.references
        total_seconds += elapsed
        print(f"  {key:<14} {elapsed:6.2f}s", file=sys.stderr)
    return {
        "sweep_seconds": round(total_seconds, 2),
        "references": total_refs,
        "references_per_sec": round(total_refs / total_seconds),
        "per_app_seconds": per_app,
    }


def append_history(path: str, record: dict) -> int:
    history = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                history = json.load(fh)
        except ValueError:
            history = []
    history.append(record)
    with open(path, "w") as fh:
        json.dump(history, fh, indent=2)
        fh.write("\n")
    return len(history)


def machine_stamp() -> dict:
    return {
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def main() -> int:
    if "--e2e" in sys.argv[1:]:
        record = machine_stamp()
        record.update(fig41_sweep())
        count = append_history(BENCH_E2E_FILE, record)
        print(json.dumps(record, indent=2))
        print(f"appended to {BENCH_E2E_FILE} ({count} record(s))")
        return 0
    record = machine_stamp()
    record["kernel_events_per_sec"] = round(kernel_events_per_sec())
    record["e2e_fft1k_seconds"] = round(end_to_end_seconds(), 3)
    count = append_history(BENCH_FILE, record)
    print(json.dumps(record, indent=2))
    print(f"appended to {BENCH_FILE} ({count} record(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
