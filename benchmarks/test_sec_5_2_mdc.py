"""Section 5.2 — the MAGIC data cache.

Paper findings under test:

* For the parallel application suite the MDC misses too rarely to matter
  (0.84% overall MDC miss rate).
* A uniprocessor radix sort over a data set whose directory footprint
  exceeds the MDC's reach, with a large radix (large-stride scattered
  writes), thrashes the MDC (14.9% miss rate) and loses ~14% versus a
  machine with no MDC miss penalty.
* The OS workload stresses the MDC more than the parallel apps (4.1%).

The uniprocessor stress run shrinks the MDC (8 KB -> 128 KB of mapped data)
in proportion to our scaled-down key array, preserving the paper's
"directory footprint >> MDC reach" relationship (see DESIGN.md).
"""

from _util import emit, once, pct

from repro.common.params import MagicCacheConfig
from repro.harness import experiments as exp
from repro.harness.tables import render_table

SMALL_MDC = MagicCacheConfig(mdc_size_bytes=8 * 1024)
NO_MDC = MagicCacheConfig(enabled=False)
STRESS = dict(keys=32768, radix=2048, key_bits=22)


def test_sec_5_2_mdc(benchmark):
    def regenerate():
        rows = []
        # 1. Parallel apps: MDC miss rates are small.
        app_rates = {}
        for app in ("fft", "lu", "ocean", "radix"):
            result = exp.run_app(app, regime="large")
            app_rates[app] = result.mdc_miss_rate
            rows.append((f"{app} (16p, large)", pct(result.mdc_miss_rate),
                         "paper suite avg 0.84%", ""))
        # 2. Uniprocessor radix stress: big strides, big footprint.
        stress = exp.run_app("radix", regime="large", n_procs=1,
                             workload_overrides=STRESS,
                             config_overrides=dict(magic_caches=SMALL_MDC))
        baseline = exp.run_app("radix", regime="large", n_procs=1,
                               workload_overrides=STRESS,
                               config_overrides=dict(magic_caches=NO_MDC))
        stress_slow = stress.execution_time / baseline.execution_time - 1.0
        rows.append(("radix stress (1p, radix 2048)",
                     pct(stress.mdc_miss_rate), "paper 14.9%", ""))
        rows.append(("radix stress slowdown vs no-MDC-penalty",
                     pct(stress_slow), "paper 14%", ""))
        # 3. The OS workload stresses the MDC more than the parallel apps.
        os_result = exp.run_app("os", regime="large")
        rows.append(("os (8p)", pct(os_result.mdc_miss_rate), "paper 4.1%",
                     f"{os_result.mdc_writebacks} victim writebacks"))
        return rows, app_rates, stress, stress_slow, os_result

    rows, app_rates, stress, stress_slow, os_result = once(benchmark, regenerate)
    # Parallel apps: MDC miss rate is small (single digits of percent).
    for app, rate in app_rates.items():
        assert rate < 0.08, (app, rate)
    # The stress run thrashes the MDC and costs real time.
    assert stress.mdc_miss_rate > 3 * max(app_rates.values())
    assert stress.mdc_miss_rate > 0.05
    assert stress_slow > 0.05
    # The OS workload sees meaningful MDC misses (the paper's 4.1% came from
    # writebacks/hints of IRIX's 1 MB footprint conflicting in the MDC; our
    # synthetic kernel's directory footprint is smaller, so the rate is
    # lower but clearly non-zero).
    assert os_result.mdc_miss_rate > 0.005
    emit("sec_5_2_mdc", render_table(
        "Section 5.2 - MAGIC data cache behaviour",
        ["Experiment", "MDC miss rate", "paper", "notes"], rows,
    ))
