"""Ablation experiments for MAGIC's architectural features.

DESIGN.md calls out the design choices this sweeps (beyond the paper's own
Section 5 ablations): the bounded-queue depths of Table 3.1, the number of
data buffers, the MDC size, the two PP optimizations separately, and the
simulator's own hit-batching quantum (a fidelity check: results must be
insensitive to it).
"""

import pytest
from _util import emit, once, pct

from repro.common.params import (
    MagicCacheConfig, ResourceLimits, flash_config,
)
from repro.harness import experiments as exp
from repro.harness.tables import render_table

APP = "mp3d"  # the communication stress test exercises every queue


def _run(**config_overrides):
    return exp.run_app(APP, regime="large",
                       config_overrides=config_overrides)


def test_ablation_queue_depths(benchmark):
    def regenerate():
        base = _run()
        tiny = _run(limits=ResourceLimits(
            incoming_network_queue=2, outgoing_network_queue=2,
            incoming_pi_queue=2,
        ))
        deep = _run(limits=ResourceLimits(
            incoming_network_queue=64, outgoing_network_queue=64,
            incoming_pi_queue=64,
        ))
        return base, tiny, deep

    base, tiny, deep = once(benchmark, regenerate)
    # The finding: Table 3.1's 16-entry queues are comfortably sufficient —
    # neither shrinking them to 2 nor deepening to 64 moves MP3D materially
    # (hot-spotting, not steady-state traffic, is what pressures queues).
    assert abs(tiny.execution_time - base.execution_time) \
        < 0.10 * base.execution_time
    assert abs(deep.execution_time - base.execution_time) \
        < 0.05 * base.execution_time
    emit("ablation_queues", render_table(
        "Ablation - network/PI queue depth (MP3D, large caches)",
        ["queues", "execution time", "vs Table 3.1 sizes"],
        [
            ("2-deep", f"{tiny.execution_time:.0f}",
             pct(tiny.execution_time / base.execution_time - 1)),
            ("16-deep (Table 3.1)", f"{base.execution_time:.0f}", "-"),
            ("64-deep", f"{deep.execution_time:.0f}",
             pct(deep.execution_time / base.execution_time - 1)),
        ],
    ))


def test_ablation_data_buffers(benchmark):
    def regenerate():
        base = _run()
        starved = _run(limits=ResourceLimits(data_buffers=4))
        # Two buffers are not enough to keep the macropipeline's producer/
        # consumer chains independent: the model deadlocks, which is exactly
        # why MAGIC provisions 16 buffers and deadlock-avoidance logic.
        deadlocked = False
        try:
            _run(limits=ResourceLimits(data_buffers=2))
        except RuntimeError:
            deadlocked = True
        return base, starved, deadlocked

    base, starved, deadlocked = once(benchmark, regenerate)
    assert deadlocked, "2 data buffers should deadlock the macropipeline"
    assert starved.execution_time >= base.execution_time * 0.98
    emit("ablation_buffers", render_table(
        "Ablation - data buffer count (MP3D)",
        ["buffers", "execution time"],
        [
            ("2", "DEADLOCK (insufficient buffering)"),
            ("4", f"{starved.execution_time:.0f}"),
            ("16 (MAGIC)", f"{base.execution_time:.0f}"),
        ],
    ))


def test_ablation_mdc_size(benchmark):
    """MDC size sweep on the uniprocessor radix stress of Section 5.2 (the
    16-processor apps' per-node directory footprints fit even a 4 KB MDC,
    so only the stress workload differentiates sizes)."""
    stress = dict(keys=32768, radix=2048, key_bits=22)

    def run_stress(size_kb):
        return exp.run_app(
            "radix", regime="large", n_procs=1,
            workload_overrides=stress,
            config_overrides=dict(
                magic_caches=MagicCacheConfig(mdc_size_bytes=size_kb * 1024)
            ),
        )

    def regenerate():
        rows = []
        times = {}
        for size_kb in (4, 16, 64):
            result = run_stress(size_kb)
            times[size_kb] = result
            rows.append((f"{size_kb} KB", f"{result.execution_time:.0f}",
                         pct(result.mdc_miss_rate)))
        return rows, times

    rows, times = once(benchmark, regenerate)
    # Smaller MDCs miss more and run slower; 64 KB (MAGIC's size) holds the
    # stress workload's directory comfortably.
    assert times[4].mdc_miss_rate > times[64].mdc_miss_rate
    assert times[4].execution_time > times[64].execution_time
    emit("ablation_mdc", render_table(
        "Ablation - MDC size (radix stress, 1 processor)",
        ["MDC", "execution time", "MDC miss rate"], rows,
    ))


def test_ablation_pp_features_separately(benchmark):
    """Section 5.3 turns both PP optimizations off together; this ablation
    separates dual issue from the special instructions."""

    def regenerate():
        base = _run()
        no_dual = _run(pp_dual_issue=False)
        no_special = _run(pp_special_instructions=False)
        neither = _run(pp_dual_issue=False, pp_special_instructions=False)
        return base, no_dual, no_special, neither

    base, no_dual, no_special, neither = once(benchmark, regenerate)
    t = lambda r: r.execution_time
    assert t(no_dual) > t(base)
    assert t(no_special) > t(base)
    assert t(neither) >= max(t(no_dual), t(no_special))
    emit("ablation_pp_features", render_table(
        "Ablation - PP optimizations separately (MP3D)",
        ["PP configuration", "execution time", "slowdown"],
        [
            ("dual issue + special instrs", f"{t(base):.0f}", "-"),
            ("single issue", f"{t(no_dual):.0f}",
             pct(t(no_dual) / t(base) - 1)),
            ("no special instrs", f"{t(no_special):.0f}",
             pct(t(no_special) / t(base) - 1)),
            ("neither (Section 5.3)", f"{t(neither):.0f}",
             pct(t(neither) / t(base) - 1)),
        ],
    ))


def test_fidelity_hit_quantum(benchmark):
    """Simulator fidelity: the CPU's hit-batching quantum is an accuracy/
    speed knob and must not change results materially."""

    def regenerate():
        coarse = _run(cpu_hit_quantum=256)
        fine = _run(cpu_hit_quantum=8)
        return coarse, fine

    coarse, fine = once(benchmark, regenerate)
    delta = abs(coarse.execution_time - fine.execution_time) \
        / fine.execution_time
    assert delta < 0.05, f"hit-batching quantum changed results by {delta:.1%}"
    # The reference stream is identical; only race resolution can shift a
    # handful of upgrade-vs-GETX classifications.
    assert coarse.miss_rate == pytest.approx(fine.miss_rate, rel=0.02)
    emit("ablation_quantum", render_table(
        "Fidelity - CPU hit-batching quantum (MP3D)",
        ["quantum", "execution time"],
        [
            ("8 cycles", f"{fine.execution_time:.0f}"),
            ("256 cycles", f"{coarse.execution_time:.0f}"),
        ],
    ))
