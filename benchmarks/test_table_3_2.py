"""Table 3.2 — sub-operation latencies (MAGIC vs ideal), in 10 ns cycles."""

from _util import emit, once

from repro.common.params import flash_config, ideal_config
from repro.harness.tables import render_table

#: (row label, attribute, paper MAGIC value, paper ideal value or None=N/A)
ROWS = [
    ("Miss detect to request on bus", "miss_detect_to_bus", 5, 5),
    ("Bus transit", "bus_transit", 1, 1),
    ("PI inbound processing", "pi_inbound", 1, 1),
    ("PI outbound processing", "pi_outbound", 4, 2),
    ("Retrieve state from proc cache", "cache_state_retrieve", 15, 15),
    ("Retrieve first dword from cache", "cache_data_retrieve", 20, 20),
    ("NI inbound processing", "ni_inbound", 8, 8),
    ("NI outbound processing", "ni_outbound", 4, 4),
    ("Inbox queue select/arbitration", "inbox_arbitration", 1, 1),
    ("Jump table lookup", "jump_table_lookup", 2, None),
    ("MDC miss penalty", "mdc_miss_penalty", 29, None),
    ("Outbox outbound processing", "outbox", 1, None),
    ("Network transit, average", "network_transit", 22, 22),
    ("Memory access to first 8 bytes", "memory_access", 14, 14),
]


def test_table_3_2(benchmark):
    def regenerate():
        flash = flash_config(16).latencies
        ideal = ideal_config(16).latencies
        rows = []
        for label, attr, paper_flash, paper_ideal in ROWS:
            rows.append((
                label,
                getattr(flash, attr), paper_flash,
                getattr(ideal, attr) if paper_ideal is not None else "N/A",
                paper_ideal if paper_ideal is not None else "N/A",
            ))
        return rows

    rows = once(benchmark, regenerate)
    for label, got_f, paper_f, got_i, paper_i in rows:
        assert got_f == paper_f, label
        if paper_i != "N/A":
            assert got_i == paper_i, label
    emit("table_3_2", render_table(
        "Table 3.2 - Suboperation latencies in 10ns cycles",
        ["Suboperation", "MAGIC", "paper", "Ideal", "paper"], rows,
    ))
