"""Figure 3.1 — suboperations of a local memory read (timeline).

Reconstructs the pipeline timeline for a local clean read on both machines
from the configuration, and checks it against the measured end-to-end
latency (27 FLASH / 24 ideal cycles).
"""

from _util import emit, once

from repro.common.params import MagicCacheConfig, flash_config, ideal_config
from repro.machine import Machine
from repro.harness.tables import render_table


def _measured_local_read(config):
    config = config.with_changes(magic_caches=MagicCacheConfig(enabled=False))
    machine = Machine(config)
    streams = [iter([("r", 0)])] + [
        iter([("c", 1)]) for _ in range(config.n_procs - 1)
    ]
    machine.run(streams)
    return machine.nodes[0].cpu.times.read_stall


def test_fig_3_1(benchmark):
    def regenerate():
        flash = flash_config(2)
        ideal = ideal_config(2)
        lat = flash.latencies
        t = 0
        timeline = []
        t += lat.miss_detect_to_bus
        timeline.append(("Miss detect -> request on bus", 0, t))
        timeline.append(("Bus transit", t, t + lat.bus_transit))
        t += lat.bus_transit
        timeline.append(("PI inbound", t, t + lat.pi_inbound))
        t += lat.pi_inbound
        timeline.append(("Inbox arbitration", t, t + lat.inbox_arbitration))
        t += lat.inbox_arbitration
        spec_start = t
        timeline.append(("Speculative memory access", spec_start,
                         spec_start + lat.memory_access))
        timeline.append(("Jump table lookup", t, t + lat.jump_table_lookup))
        t += lat.jump_table_lookup
        handler = flash.handler_costs.read_from_memory
        timeline.append(("PP handler (overlapped with memory)", t, t + handler))
        data_ready = spec_start + lat.memory_access
        timeline.append(("PI outbound", data_ready,
                         data_ready + lat.pi_outbound))
        done = data_ready + lat.pi_outbound + lat.pi_outbound_bus_transit
        timeline.append(("Bus transit (first dword)", done - 1, done))
        return timeline, done, _measured_local_read(flash), \
            _measured_local_read(ideal)

    timeline, predicted, measured_flash, measured_ideal = once(
        benchmark, regenerate
    )
    assert predicted == measured_flash == 27
    assert measured_ideal == 24
    # The PP handler finishes before the speculative data returns: the
    # protocol processing is fully hidden behind the memory access.
    handler = next(row for row in timeline if "handler" in row[0])
    data = next(row for row in timeline if "Speculative" in row[0])
    assert handler[2] <= data[2]
    rows = [(stage, start, end) for stage, start, end in timeline]
    emit("fig_3_1", render_table(
        f"Figure 3.1 - Local read timeline (FLASH end-to-end {measured_flash} "
        f"cycles, paper 27; ideal {measured_ideal}, paper 24)",
        ["Suboperation", "start", "end"], rows,
    ))
