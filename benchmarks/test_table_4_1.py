"""Table 4.1 — read miss distributions and CRMT, large ("1 MB") caches."""

from _util import emit, once

from repro.common.params import flash_config, ideal_config
from repro.harness import experiments as exp
from repro.harness.micro import miss_latency_lookup
from repro.harness.tables import DIST_ROWS, PAPER_TABLE_4_1, render_table
from repro.protocol.coherence import MissClass


def test_table_4_1(benchmark):
    def regenerate():
        flash_lat = miss_latency_lookup(flash_config(16))
        ideal_lat = miss_latency_lookup(ideal_config(16))
        rows = []
        shapes = {}
        for app in exp.APP_ORDER:
            flash, _ideal = exp.run_flash_ideal(app, regime="large")
            dist = flash.read_miss_distribution
            p = PAPER_TABLE_4_1[app]
            rows.append((
                app,
                f"{flash.miss_rate * 100:.2f} ({p[0]})",
                *[f"{dist[cls] * 100:.1f} ({p[1 + i]})"
                  for i, (cls, _label) in enumerate(DIST_ROWS)],
                f"{flash.crmt(flash_lat):.0f} ({p[6]})",
                f"{flash.crmt(ideal_lat):.0f} ({p[7]})",
                f"{flash.avg_memory_occupancy * 100:.1f} ({p[8]})",
                f"{flash.avg_pp_occupancy * 100:.1f} ({p[9]})",
            ))
            shapes[app] = (dist, flash.crmt(flash_lat), flash.crmt(ideal_lat))
        return rows, shapes

    rows, shapes = once(benchmark, regenerate)
    # Shape assertions: the dominant miss class per app matches the paper.
    dominant_expected = {
        "fft": MissClass.REMOTE_DIRTY_HOME,
        "mp3d": MissClass.REMOTE_DIRTY_REMOTE,
        "radix": MissClass.LOCAL_DIRTY_REMOTE,
        "lu": MissClass.REMOTE_CLEAN,
        "barnes": None,  # remote-dominated; exact split differs (see notes)
        "ocean": None,   # RDH vs LC split depends on capacity misses
        "os": None,
    }
    for app, (dist, fcrmt, icrmt) in shapes.items():
        expected = dominant_expected[app]
        if expected is not None:
            assert max(dist, key=dist.get) == expected, app
        # FLASH CRMT always exceeds ideal CRMT (the latency cost of
        # flexibility), by roughly the paper's ~35% average.
        assert fcrmt > icrmt
        assert 1.1 < fcrmt / icrmt < 1.7, app
    emit("table_4_1", render_table(
        "Table 4.1 - Read miss distributions and CRMT, large caches"
        " (measured (paper))",
        ["App", "Miss rate %", "LC %", "LDR %", "RC %", "RDH %", "RDR %",
         "FLASH CRMT", "Ideal CRMT", "Mem occ %", "PP occ %"],
        rows,
    ))
