"""Event-kernel throughput microbenchmark.

Reports events/second for the canonical mixed workload (future timeouts,
zero-delay timeouts, event triggers) defined in ``perf_smoke.py``.  The
same-time ready-deque fast path and timeout recycling in ``sim/engine.py``
lift this well above the pre-optimization scheduler (~435k ev/s on the
reference container; ~665k after — see ``BENCH_kernel.json``).
"""

from _util import emit, once

import perf_smoke


def test_kernel_throughput(benchmark):
    rate = once(benchmark, lambda: perf_smoke.kernel_events_per_sec(repeats=2))
    emit("kernel_throughput",
         f"event kernel throughput: {rate:,.0f} events/sec\n"
         f"(workload: {perf_smoke.N_WORKERS} processes x {perf_smoke.N_STEPS}"
         f" steps x {perf_smoke.EVENTS_PER_STEP} events)")
    # Conservative floor: an order of magnitude below the reference machine,
    # so only a genuine kernel regression (not CI jitter) trips it.
    assert rate > 60_000, f"kernel throughput collapsed: {rate:,.0f} ev/s"
