"""Event-kernel throughput microbenchmarks.

Reports events/second for the canonical mixed workload (future timeouts,
zero-delay timeouts, event triggers) defined in ``perf_smoke.py``, in both
execution models the kernel supports:

* **coroutine dispatch** — generator processes resumed per event, the model
  the simulator's cold paths still use;
* **callback dispatch** — bare scheduled callbacks (``call_later`` /
  ``call_soon`` / ``Event.callbacks``), the model of the hot CPU / MAGIC /
  memory / network paths.

The same-time ready-deque fast path and timeout recycling in
``sim/engine.py`` lift coroutine dispatch well above the pre-optimization
scheduler (~435k ev/s on the reference container; ~665k after); retiring
the generator resume lifts the callback path further still — see the
``dispatch_modes`` breakdown in ``BENCH_kernel.json``.
"""

from _util import emit, once

import perf_smoke


def test_kernel_throughput(benchmark):
    rate = once(benchmark, lambda: perf_smoke.kernel_events_per_sec(repeats=2))
    emit("kernel_throughput",
         f"event kernel throughput (coroutine dispatch): {rate:,.0f} events/sec\n"
         f"(workload: {perf_smoke.N_WORKERS} processes x {perf_smoke.N_STEPS}"
         f" steps x {perf_smoke.EVENTS_PER_STEP} events)")
    # Conservative floor: an order of magnitude below the reference machine,
    # so only a genuine kernel regression (not CI jitter) trips it.
    assert rate > 60_000, f"kernel throughput collapsed: {rate:,.0f} ev/s"


def test_callback_dispatch_throughput(benchmark):
    rate = once(benchmark,
                lambda: perf_smoke.kernel_callback_events_per_sec(repeats=2))
    emit("callback_throughput",
         f"event kernel throughput (callback dispatch): {rate:,.0f} events/sec\n"
         f"(same workload shape as the coroutine benchmark)")
    assert rate > 60_000, f"callback throughput collapsed: {rate:,.0f} ev/s"


def test_callback_dispatch_beats_coroutine_dispatch():
    """The point of the callback core: the identical event mix is cheaper
    without generator frames to resume.  Single repeat each and a generous
    margin (no equality tolerance games) keeps this stable under CI noise."""
    coroutine = perf_smoke.kernel_events_per_sec(repeats=1)
    callback = perf_smoke.kernel_callback_events_per_sec(repeats=1)
    emit("dispatch_modes",
         f"dispatch modes: coroutine {coroutine:,.0f} ev/s,"
         f" callback {callback:,.0f} ev/s"
         f" ({callback / coroutine:.2f}x)")
    assert callback > coroutine, (
        f"callback dispatch ({callback:,.0f} ev/s) should outrun coroutine"
        f" dispatch ({coroutine:,.0f} ev/s) on the same event mix")
