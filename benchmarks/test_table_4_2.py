"""Table 4.2 — read miss distributions and CRMTs at the smaller caches.

The paper's key observation: with capacity misses, "in most cases many more
misses are satisfied locally, a case for which the latency difference between
FLASH and the ideal machine is small."
"""

from _util import emit, once

from repro.common.params import flash_config, ideal_config
from repro.harness import experiments as exp
from repro.harness.micro import miss_latency_lookup
from repro.harness.tables import PAPER_TABLE_4_2, render_table
from repro.protocol.coherence import MissClass


def test_table_4_2(benchmark):
    def regenerate():
        flash_lat = miss_latency_lookup(flash_config(16))
        ideal_lat = miss_latency_lookup(ideal_config(16))
        rows = []
        measured = {}
        for app in ("barnes", "fft", "mp3d", "ocean", "radix"):
            for regime in ("medium", "small"):
                if exp.regime_cache_bytes(app, regime) is None:
                    continue
                # Metrics on: the handler-level columns below come from the
                # machine-wide registry (per-handler invocation counts),
                # not ad-hoc per-test bookkeeping.
                flash = exp.run_app(app, kind="flash", regime=regime,
                                    metrics=True)
                dist = flash.read_miss_distribution
                paper = PAPER_TABLE_4_2.get(app, {}).get(regime)
                rows.append((
                    app, regime,
                    round(flash.miss_rate * 100, 2),
                    paper[0] if paper else "-",
                    round(dist[MissClass.LOCAL_CLEAN] * 100, 1),
                    paper[1] if paper else "-",
                    round(flash.crmt(flash_lat)),
                    paper[6] if paper else "-",
                    round(flash.crmt(ideal_lat)),
                    paper[7] if paper else "-",
                    round(flash.avg_pp_occupancy * 100, 1),
                    paper[9] if paper else "-",
                ))
                measured[(app, regime)] = (flash, dist)
        return rows, measured

    rows, measured = once(benchmark, regenerate)
    for (app, regime), (flash, dist) in measured.items():
        large = exp.run_app(app, regime="large")
        # Smaller caches -> higher miss rates (capacity misses appear).
        assert flash.miss_rate > large.miss_rate, (app, regime)
        # The registry's per-handler invocation counts are the source of
        # truth for the handler-level rows: summed over handlers (block
        # transfers aside) they must reproduce the aggregate count, and the
        # per-handler busy cycles must reconcile with the PP occupancy.
        fam = flash.metrics["families"]["pp.handler_invocations"]["values"]
        total = sum(n for label, n in fam.items()
                    if not label.endswith("/xfer"))
        assert total == flash.handler_invocations, (app, regime)
        busy = sum(
            flash.metrics["families"]["pp.handler_busy_cycles"]["values"]
            .values())
        derived = busy / (flash.n_procs * flash.execution_time)
        assert abs(derived - flash.avg_pp_occupancy) < 1e-9, (app, regime)
    # The paper's headline: at small caches the local-clean fraction jumps
    # for the capacity-dominated apps (FFT 64.7%, Ocean 95.6%, Radix 91.3%).
    for app in ("fft", "ocean", "radix"):
        small = measured[(app, "small")][1]
        large = exp.run_app(app, regime="large").read_miss_distribution
        assert small[MissClass.LOCAL_CLEAN] > large[MissClass.LOCAL_CLEAN]
        assert small[MissClass.LOCAL_CLEAN] > 0.3, app
    emit("table_4_2", render_table(
        "Table 4.2 - Miss behaviour at smaller caches (measured vs paper)",
        ["App", "Regime", "Miss %", "paper", "LC %", "paper",
         "fCRMT", "paper", "iCRMT", "paper", "PP occ %", "paper"],
        rows,
    ))
