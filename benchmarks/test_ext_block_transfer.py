"""Extension experiment: block-transfer message passing ([HGD+94]).

The paper defers FLASH's message-passing performance to its companion paper
but the mechanism is part of the system: MAGIC's transfer handlers stream a
block through the pipelined datapath.  This experiment measures (a) the
bandwidth advantage of block transfer over pulling the same bytes through
the coherence protocol, and (b) the flexibility cost of message passing —
FLASH's per-line PP handlers versus the ideal machine's zero-occupancy
transfers.
"""

from _util import emit, once, pct

from repro.common.params import MagicCacheConfig, flash_config, ideal_config
from repro.harness.tables import render_table
from repro.machine import Machine

KB = 1024
SIZES = [1 * KB, 4 * KB, 16 * KB, 64 * KB]


def _machine(kind):
    make = flash_config if kind == "flash" else ideal_config
    config = make(n_procs=2, cache_size=64 * KB).with_changes(
        magic_caches=MagicCacheConfig(enabled=False)
    )
    return Machine(config)


def _xfer_time(kind, nbytes):
    machine = _machine(kind)
    result = machine.run([
        iter([("s", 1, 0, nbytes)]),
        iter([("v", 0)]),
    ])
    return result.execution_time


def _coherence_pull_time(kind, nbytes):
    machine = _machine(kind)
    lines = nbytes // 128
    result = machine.run([
        iter([("c", 1)]),
        iter([("r", i * 128) for i in range(lines)]),
    ])
    return result.execution_time


def test_ext_block_transfer(benchmark):
    def regenerate():
        rows = []
        data = {}
        for nbytes in SIZES:
            flash_xfer = _xfer_time("flash", nbytes)
            ideal_xfer = _xfer_time("ideal", nbytes)
            flash_pull = _coherence_pull_time("flash", nbytes)
            flexibility = flash_xfer / ideal_xfer - 1.0
            advantage = flash_pull / flash_xfer
            data[nbytes] = (flash_xfer, ideal_xfer, flash_pull,
                            flexibility, advantage)
            rows.append((
                f"{nbytes // KB} KB", f"{flash_xfer:.0f}",
                f"{ideal_xfer:.0f}", pct(flexibility),
                f"{flash_pull:.0f}", f"{advantage:.1f}x",
            ))
        return rows, data

    rows, data = once(benchmark, regenerate)
    for nbytes, (fx, ix, pull, flexibility, advantage) in data.items():
        assert fx > ix  # flexibility always costs something
        if nbytes >= 4 * KB:
            # Block transfer beats line-at-a-time coherence pulls for bulk
            # data (the [WSH94] argument the paper builds on).
            assert advantage > 1.5, nbytes
    # The per-line PP handler cost makes FLASH's gap grow with size, but it
    # must stay bounded (the datapath, not the PP, moves the bytes).
    small_flex = data[SIZES[0]][3]
    large_flex = data[SIZES[-1]][3]
    assert large_flex < 3.0
    emit("ext_block_transfer", render_table(
        "Extension - block transfer: FLASH vs ideal, and vs coherence pulls"
        " (cycles; not a paper table)",
        ["size", "FLASH xfer", "ideal xfer", "flex cost", "coherence pull",
         "advantage"],
        rows,
    ))
