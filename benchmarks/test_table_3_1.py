"""Table 3.1 — MAGIC resource limits.

Regenerates the table from the configuration and demonstrates each limit's
documented consequence behaviorally (a full queue stalls its producer).
"""

from _util import emit, once

from repro.common.params import flash_config
from repro.harness.tables import render_table
from repro.memory.controller import MemoryController
from repro.sim.engine import Environment
from repro.sim.queues import BoundedQueue


def test_table_3_1(benchmark):
    config = flash_config(16)
    limits = config.limits

    def regenerate():
        rows = [
            ("Incoming network queues", limits.incoming_network_queue,
             "messages back up into the network"),
            ("Outgoing network queues", limits.outgoing_network_queue,
             "PP stalls until space available"),
            ("Memory controller queue", limits.memory_controller_queue,
             "PP or inbox stalls"),
            ("Inbox-to-PP queue", limits.inbox_to_pp_queue,
             "inbox stalls"),
            ("Outgoing PI queue", limits.outgoing_pi_queue,
             "PP stalls on next send"),
            ("Incoming PI queue", limits.incoming_pi_queue,
             "processor stalls"),
            ("Data buffers", limits.data_buffers,
             "unit needing a buffer stalls"),
        ]
        # Behavioural check: the 1-deep memory queue stalls its submitter.
        env = Environment()
        mem = MemoryController(env, config)

        def submitter():
            for i in range(4):
                yield mem.submit(mem.read(i * 128))
            return env.now

        stall_time = env.run_process(submitter())
        return rows, stall_time

    rows, stall_time = once(benchmark, regenerate)
    paper = {16, 1}
    assert {r[1] for r in rows} == paper
    assert stall_time > 0  # the fourth submit had to wait for queue space
    emit("table_3_1", render_table(
        "Table 3.1 - MAGIC resource limits (paper values reproduced exactly)",
        ["Resource", "Size", "Impact when full"], rows,
    ))
